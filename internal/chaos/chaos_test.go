package chaos

import (
	"strings"
	"testing"
)

func TestFaultValidate(t *testing.T) {
	cases := []struct {
		name    string
		f       Fault
		horizon float64
		wantErr string
	}{
		{"valid transient crash", Fault{Kind: KindCrash, Stage: 1, AtSec: 1, RecoverySec: 0.5}, 10, ""},
		{"valid permanent crash", Fault{Kind: KindCrash, Stage: 0, AtSec: 1, Permanent: true}, 10, ""},
		{"valid healing crash", Fault{Kind: KindCrash, Stage: 0, AtSec: 1, Permanent: true, RecoverAfterSec: 2, Flaps: 1}, 10, ""},
		{"permanent with downtime", Fault{Kind: KindCrash, Stage: 0, AtSec: 1, Permanent: true, RecoverySec: 0.5}, 10, "use RecoverAfterSec"},
		{"negative heal schedule", Fault{Kind: KindCrash, Stage: 0, AtSec: 1, Permanent: true, RecoverAfterSec: -1}, 10, "RecoverAfterSec"},
		{"heal on transient crash", Fault{Kind: KindCrash, Stage: 0, AtSec: 1, RecoverAfterSec: 2}, 10, "only applies to permanent"},
		{"negative flaps", Fault{Kind: KindCrash, Stage: 0, AtSec: 1, Permanent: true, RecoverAfterSec: 2, Flaps: -1}, 10, "flap count"},
		{"flaps without heal", Fault{Kind: KindCrash, Stage: 0, AtSec: 1, Permanent: true, Flaps: 1}, 10, "without a RecoverAfterSec"},
		{"heal on non-crash kind", Fault{Kind: KindStraggler, Stage: 0, AtSec: 1, Factor: 2, DurationSec: 1, RecoverAfterSec: 2}, 10, "crash-only"},
		{"stage out of range", Fault{Kind: KindCrash, Stage: 3, AtSec: 1}, 10, "out of [0,3)"},
		{"negative stage", Fault{Kind: KindStraggler, Stage: -1, AtSec: 1, Factor: 2, DurationSec: 1}, 10, "out of [0,3)"},
		{"negative at", Fault{Kind: KindCrash, Stage: 0, AtSec: -1}, 10, "negative time"},
		{"beyond horizon", Fault{Kind: KindCrash, Stage: 0, AtSec: 11}, 10, "beyond the"},
		{"negative recovery", Fault{Kind: KindCrash, Stage: 0, AtSec: 1, RecoverySec: -0.1}, 10, "recovery"},
		{"straggler factor below one", Fault{Kind: KindStraggler, Stage: 0, AtSec: 1, Factor: 0.5, DurationSec: 1}, 10, ">= 1"},
		{"straggler zero duration", Fault{Kind: KindStraggler, Stage: 0, AtSec: 1, Factor: 2}, 10, "duration"},
		{"slowlink permanent", Fault{Kind: KindSlowLink, Stage: 0, AtSec: 1, Factor: 2, DurationSec: 1, Permanent: true}, 10, "cannot be permanent"},
		{"kvalloc zero prob", Fault{Kind: KindKVAlloc, AtSec: 1, Factor: 0, DurationSec: 1}, 10, "(0,1]"},
		{"kvalloc prob above one", Fault{Kind: KindKVAlloc, AtSec: 1, Factor: 1.5, DurationSec: 1}, 10, "(0,1]"},
		{"kvalloc ignores stage", Fault{Kind: KindKVAlloc, Stage: 99, AtSec: 1, Factor: 0.5, DurationSec: 1}, 10, ""},
		{"unknown kind", Fault{Kind: Kind(42), Stage: 0, AtSec: 1}, 10, "unknown fault kind"},
		{"no horizon disables bound", Fault{Kind: KindCrash, Stage: 0, AtSec: 1e6}, 0, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.f.Validate(3, tc.horizon)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestScheduleValidate(t *testing.T) {
	var nilSched *Schedule
	if err := nilSched.Validate(2); err != nil {
		t.Fatalf("nil schedule must validate: %v", err)
	}
	perm := Fault{Kind: KindCrash, Stage: 0, AtSec: 1, Permanent: true}
	s := &Schedule{Faults: []Fault{perm, {Kind: KindCrash, Stage: 1, AtSec: 2, Permanent: true}}}
	if err := s.Validate(2); err == nil || !strings.Contains(err.Error(), "permanent") {
		t.Fatalf("two permanent losses must be rejected, got %v", err)
	}
	if err := (&Schedule{HorizonSec: -1}).Validate(2); err == nil {
		t.Fatal("negative horizon must be rejected")
	}
	if err := (&Schedule{Faults: []Fault{perm}}).Validate(0); err == nil {
		t.Fatal("zero stages must be rejected")
	}
	got, ok := (&Schedule{Faults: []Fault{{Kind: KindCrash, Stage: 1, AtSec: 2}, perm}}).Permanent()
	if !ok || !got.Permanent || got.Stage != 0 {
		t.Fatalf("Permanent() = %+v, %v", got, ok)
	}
	if _, ok := nilSched.Permanent(); ok {
		t.Fatal("nil schedule has no permanent fault")
	}
}

func TestMultipliersAndKVProb(t *testing.T) {
	s := &Schedule{Faults: []Fault{
		{Kind: KindStraggler, Stage: 0, AtSec: 1, Factor: 2, DurationSec: 2},
		{Kind: KindStraggler, Stage: 0, AtSec: 2, Factor: 3, DurationSec: 2}, // overlaps [2,3)
		{Kind: KindSlowLink, Stage: 1, AtSec: 1, Factor: 4, DurationSec: 1},
		{Kind: KindKVAlloc, AtSec: 0, Factor: 0.5, DurationSec: 10},
		{Kind: KindKVAlloc, AtSec: 0, Factor: 0.5, DurationSec: 10},
	}}
	if got := s.ComputeMult(0, 0.5); got != 1 {
		t.Errorf("before window: mult %g, want 1", got)
	}
	if got := s.ComputeMult(0, 1.5); got != 2 {
		t.Errorf("single straggler: mult %g, want 2", got)
	}
	if got := s.ComputeMult(0, 2.5); got != 6 {
		t.Errorf("overlapping stragglers must compound: mult %g, want 6", got)
	}
	if got := s.ComputeMult(1, 1.5); got != 1 {
		t.Errorf("other stage unaffected: mult %g, want 1", got)
	}
	if got := s.CommMult(1, 1.5); got != 4 {
		t.Errorf("slow link: mult %g, want 4", got)
	}
	if got := s.CommMult(1, 2.5); got != 1 {
		t.Errorf("window closed: mult %g, want 1", got)
	}
	// Two independent 0.5 windows: 1 − 0.5·0.5 = 0.75.
	if got := s.KVFailProb(5); got != 0.75 {
		t.Errorf("combined KV fail prob %g, want 0.75", got)
	}
	if got := s.KVFailProb(20); got != 0 {
		t.Errorf("outside windows: prob %g, want 0", got)
	}
	if !s.HasKVFaults() {
		t.Error("HasKVFaults must be true")
	}
	var nilSched *Schedule
	if nilSched.ComputeMult(0, 0) != 1 || nilSched.CommMult(0, 0) != 1 || nilSched.KVFailProb(0) != 0 || nilSched.HasKVFaults() {
		t.Error("nil schedule must be a no-op")
	}
}

func TestProfilesDeterministic(t *testing.T) {
	for _, name := range Profiles() {
		t.Run(name, func(t *testing.T) {
			a, err := New(name, 42, 4, 10)
			if err != nil {
				t.Fatal(err)
			}
			b, err := New(name, 42, 4, 10)
			if err != nil {
				t.Fatal(err)
			}
			if len(a.Faults) != len(b.Faults) {
				t.Fatalf("fault counts differ: %d vs %d", len(a.Faults), len(b.Faults))
			}
			for i := range a.Faults {
				if a.Faults[i] != b.Faults[i] {
					t.Errorf("fault %d differs: %+v vs %+v", i, a.Faults[i], b.Faults[i])
				}
			}
			// A different seed must (for these profiles) move or resize at
			// least one fault.
			c, err := New(name, 43, 4, 10)
			if err != nil {
				t.Fatal(err)
			}
			same := true
			for i := range a.Faults {
				if a.Faults[i] != c.Faults[i] {
					same = false
				}
			}
			if same {
				t.Error("seed 42 and 43 generated identical schedules")
			}
			if err := a.Validate(4); err != nil {
				t.Errorf("generated schedule invalid: %v", err)
			}
		})
	}
}

// TestHealProfileShapes pins the heal-specific invariants the failover
// controller and the dist rejoin path rely on.
func TestHealProfileShapes(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		s, err := New(ProfileFlap, seed, 4, 10)
		if err != nil {
			t.Fatal(err)
		}
		f, ok := s.Permanent()
		if !ok {
			t.Fatalf("seed %d: flap profile has no permanent loss", seed)
		}
		if f.RecoverAfterSec <= 0 {
			t.Errorf("seed %d: flap loss never heals (%+v)", seed, f)
		}
		if f.Flaps < 0 || f.Flaps > 1 {
			t.Errorf("seed %d: flap count %d outside [0,1] — would trip default quarantine", seed, f.Flaps)
		}
		// Loss + heal + one flap cycle must land inside the horizon so
		// the restore happens mid-run, not after drain.
		if end := f.AtSec + f.RecoverAfterSec*float64(1+f.Flaps); end >= s.HorizonSec {
			t.Errorf("seed %d: heal at %.3fs lands past the %.1fs horizon", seed, end, s.HorizonSec)
		}

		ph, err := New(ProfilePartitionHeal, seed, 4, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(ph.Faults) != 1 || ph.Faults[0].Kind != KindPartition || ph.Faults[0].Conn != -1 {
			t.Fatalf("seed %d: partition-heal shape %+v", seed, ph.Faults)
		}
		if ph.Faults[0].DurationSec < 0.3*ph.HorizonSec {
			t.Errorf("seed %d: partition window %.3fs too short to expire leases", seed, ph.Faults[0].DurationSec)
		}
	}
}

func TestProfileErrors(t *testing.T) {
	if _, err := New("no-such-profile", 1, 2, 10); err == nil || !strings.Contains(err.Error(), "unknown profile") {
		t.Fatalf("unknown profile error %v", err)
	}
	if _, err := New(ProfileCrash, 1, 0, 10); err == nil {
		t.Fatal("zero stages must fail")
	}
	if _, err := New(ProfileCrash, 1, 2, 0); err == nil {
		t.Fatal("zero horizon must fail")
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{KindCrash: "crash", KindStraggler: "straggler", KindSlowLink: "slowlink", KindKVAlloc: "kvalloc", Kind(9): "Kind(9)"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind %d → %q, want %q", int(k), k.String(), s)
		}
	}
}

func TestEndSec(t *testing.T) {
	if got := (Fault{Kind: KindCrash, AtSec: 1, RecoverySec: 2}).EndSec(); got != 3 {
		t.Errorf("transient crash end %g, want 3", got)
	}
	if got := (Fault{Kind: KindCrash, AtSec: 1, Permanent: true}).EndSec(); got != 1 {
		t.Errorf("permanent crash end %g, want 1", got)
	}
	if got := (Fault{Kind: KindStraggler, AtSec: 1, DurationSec: 4}).EndSec(); got != 5 {
		t.Errorf("straggler end %g, want 5", got)
	}
}
