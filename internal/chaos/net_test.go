package chaos

import (
	"reflect"
	"strings"
	"testing"
)

func TestNetworkKinds(t *testing.T) {
	for _, k := range []Kind{KindConnDrop, KindPartition, KindNetDelay} {
		if !k.Network() {
			t.Errorf("%s must report Network()", k)
		}
	}
	for _, k := range []Kind{KindCrash, KindStraggler, KindSlowLink, KindKVAlloc} {
		if k.Network() {
			t.Errorf("%s must not report Network()", k)
		}
	}
	if KindConnDrop.String() != "conndrop" || KindPartition.String() != "partition" || KindNetDelay.String() != "netdelay" {
		t.Errorf("kind strings: %s %s %s", KindConnDrop, KindPartition, KindNetDelay)
	}
}

// TestNetFaultValidation: the network kinds have their own invariants and
// are exempt from the pipeline-stage range check.
func TestNetFaultValidation(t *testing.T) {
	ok := []Fault{
		{Kind: KindConnDrop, Conn: 0, AfterFrames: 1},
		{Kind: KindConnDrop, Conn: 7, AfterFrames: 12}, // conn ordinal beyond stage count is fine
		{Kind: KindPartition, Conn: -1, AtSec: 0.5, DurationSec: 0.1},
		{Kind: KindNetDelay, Conn: -1, AtSec: 0, DelaySec: 0.01, DurationSec: 1},
		{Kind: KindNetDelay, Conn: 2, AtSec: 0, DelaySec: 0.01, DurationSec: 1},
	}
	for i, f := range ok {
		if err := f.Validate(2, 0); err != nil {
			t.Errorf("fault %d (%s) should validate: %v", i, f.Kind, err)
		}
	}
	bad := []struct {
		f    Fault
		want string
	}{
		{Fault{Kind: KindConnDrop, Conn: -1, AfterFrames: 1}, "specific connection"},
		{Fault{Kind: KindConnDrop, Conn: 0, AfterFrames: 0}, ">= 1"},
		{Fault{Kind: KindConnDrop, Conn: 0, AfterFrames: 1, Permanent: true}, "permanent"},
		{Fault{Kind: KindPartition, Conn: -2, DurationSec: 1}, "out of range"},
		{Fault{Kind: KindPartition, Conn: -1, DurationSec: 0}, "positive"},
		{Fault{Kind: KindNetDelay, Conn: -1, DelaySec: 0, DurationSec: 1}, "delay"},
		{Fault{Kind: KindNetDelay, Conn: -1, DelaySec: 0.01, DurationSec: 0}, "positive"},
	}
	for i, c := range bad {
		err := c.f.Validate(2, 0)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("bad fault %d: got %v, want mention of %q", i, err, c.want)
		}
	}
}

// TestNetFaultsSubset: NetFaults extracts exactly the network kinds, in
// schedule order; a nil schedule yields none.
func TestNetFaultsSubset(t *testing.T) {
	s := &Schedule{Faults: []Fault{
		{Kind: KindCrash, Stage: 0, AtSec: 1, RecoverySec: 1},
		{Kind: KindConnDrop, Conn: 1, AfterFrames: 3},
		{Kind: KindKVAlloc, AtSec: 0, Factor: 0.5, DurationSec: 1},
		{Kind: KindPartition, Conn: -1, AtSec: 2, DurationSec: 1},
	}}
	if err := s.Validate(2); err != nil {
		t.Fatal(err)
	}
	nf := s.NetFaults()
	if len(nf) != 2 || nf[0].Kind != KindConnDrop || nf[1].Kind != KindPartition {
		t.Fatalf("NetFaults = %+v, want the conndrop then the partition", nf)
	}
	if (*Schedule)(nil).NetFaults() != nil {
		t.Error("nil schedule must have no net faults")
	}
}

// TestNetProfilesDeterministic: the dist-facing profiles generate
// validated, seed-reproducible schedules made of network kinds only.
func TestNetProfilesDeterministic(t *testing.T) {
	for _, name := range []string{ProfileConnDrop, ProfilePartition, ProfileNetDelay} {
		a, err := New(name, 9, 2, 5.0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := New(name, 9, 2, 5.0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: schedules differ across same-seed generations:\n%+v\n%+v", name, a, b)
		}
		if len(a.Faults) == 0 {
			t.Fatalf("%s: empty schedule", name)
		}
		for _, f := range a.Faults {
			if !f.Kind.Network() {
				t.Errorf("%s: produced non-network fault %s", name, f.Kind)
			}
		}
		c, err := New(name, 10, 2, 5.0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		_ = c // a different seed must also validate; value differences are expected but not required
	}
	if got, _ := New(ProfileConnDrop, 3, 4, 5.0); got.Faults[0].Conn < 0 || got.Faults[0].Conn >= 4 {
		t.Errorf("conn-drop ordinal %d outside worker range [0,4)", got.Faults[0].Conn)
	}
}
