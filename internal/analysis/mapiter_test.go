package analysis

import "testing"

func TestMapIter(t *testing.T) {
	runFixture(t, MapIter, "mapiter", "repro/internal/runtime/mapiterfix")
}

func TestMapIterOutOfScope(t *testing.T) {
	// Unconstrained packages (neither sim nor dist) draw no findings.
	pkg := loadFixture(t, "mapiter", "example.com/elsewhere")
	if diags := RunPackage(pkg, []*Analyzer{MapIter}); len(diags) != 0 {
		t.Fatalf("out-of-scope package should be quiet, got %v", diags)
	}
}

func TestMapIterDistInScope(t *testing.T) {
	// dist is ctrl, but its wire frames still need stable ordering.
	pkg := loadFixture(t, "mapiter", "repro/internal/dist/framefix")
	if diags := RunPackage(pkg, []*Analyzer{MapIter}); len(diags) == 0 {
		t.Fatal("dist packages are in mapiter scope; want findings")
	}
}
