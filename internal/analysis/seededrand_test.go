package analysis

import "testing"

func TestSeededRand(t *testing.T) {
	runFixture(t, SeededRand, "seededrand", "repro/internal/fixture")
}
