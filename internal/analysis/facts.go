package analysis

// Cross-package facts: which packages belong to the deterministic sim
// path and which are control-plane code, plus which obs metric families
// belong to which registry. The ground truth is the checked-in
// simctrl.manifest; the sim set is closed under imports (a helper pulled
// in by a sim package inherits the sim obligations), so the facts layer
// needs the module's import graph — the driver supplies it, while
// fixture tests fall back to manifest-only facts.

import (
	_ "embed"
	"fmt"
	"sort"
	"strings"
	"sync"
)

//go:embed simctrl.manifest
var manifestText string

// Role classifies a package or metric family under the sim/ctrl contract.
type Role int8

const (
	// RoleUnknown means the manifest takes no position.
	RoleUnknown Role = iota
	// RoleSim marks the deterministic simulation path.
	RoleSim
	// RoleCtrl marks wall-clock control-plane code.
	RoleCtrl
)

func (r Role) String() string {
	switch r {
	case RoleSim:
		return "sim"
	case RoleCtrl:
		return "ctrl"
	default:
		return "unknown"
	}
}

// Manifest is the parsed simctrl.manifest.
type Manifest struct {
	packages map[string]Role // import path prefix → role
	metrics  []metricRule    // longest-pattern-first
}

type metricRule struct {
	pattern string // literal, or prefix when wildcard
	wild    bool
	role    Role
}

// ParseManifest parses the manifest format documented in simctrl.manifest.
func ParseManifest(text string) (*Manifest, error) {
	m := &Manifest{packages: map[string]Role{}}
	for i, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("analysis: manifest line %d: want `package|metric sim|ctrl <pattern>`, got %q", i+1, line)
		}
		var role Role
		switch fields[1] {
		case "sim":
			role = RoleSim
		case "ctrl":
			role = RoleCtrl
		default:
			return nil, fmt.Errorf("analysis: manifest line %d: unknown role %q", i+1, fields[1])
		}
		switch fields[0] {
		case "package":
			if prev, ok := m.packages[fields[2]]; ok && prev != role {
				return nil, fmt.Errorf("analysis: manifest line %d: package %s listed as both %s and %s", i+1, fields[2], prev, role)
			}
			m.packages[fields[2]] = role
		case "metric":
			rule := metricRule{pattern: fields[2], role: role}
			if strings.HasSuffix(rule.pattern, "*") {
				rule.wild = true
				rule.pattern = strings.TrimSuffix(rule.pattern, "*")
			}
			m.metrics = append(m.metrics, rule)
		default:
			return nil, fmt.Errorf("analysis: manifest line %d: unknown directive %q", i+1, fields[0])
		}
	}
	// Longest pattern first so exact metric names beat family wildcards.
	sort.SliceStable(m.metrics, func(i, j int) bool {
		return len(m.metrics[i].pattern) > len(m.metrics[j].pattern)
	})
	return m, nil
}

// DefaultManifest parses the embedded simctrl.manifest once.
var DefaultManifest = sync.OnceValue(func() *Manifest {
	m, err := ParseManifest(manifestText)
	if err != nil {
		panic(err) // the manifest is checked in; a parse error is a build break
	}
	return m
})

// PackageRole returns the manifest's explicit role for an import path:
// the longest listed prefix wins, and an entry covers its subpackages
// (`repro/cmd` covers `repro/cmd/llmpq-vet`).
func (m *Manifest) PackageRole(path string) Role {
	best, bestLen := RoleUnknown, -1
	for prefix, role := range m.packages {
		if len(prefix) > bestLen && (path == prefix || strings.HasPrefix(path, prefix+"/")) {
			best, bestLen = role, len(prefix)
		}
	}
	return best
}

// MetricRole classifies one metric family name, or RoleUnknown.
func (m *Manifest) MetricRole(name string) Role {
	for _, r := range m.metrics {
		if r.wild && strings.HasPrefix(name, r.pattern) {
			return r.role
		}
		if !r.wild && name == r.pattern {
			return r.role
		}
	}
	return RoleUnknown
}

// Facts carries the computed cross-package view one analyzer pass sees.
type Facts struct {
	Manifest *Manifest
	// effective maps import path → role after import propagation; empty
	// for manifest-only facts.
	effective map[string]Role
	// simVia maps a propagated-sim package to one sim package that
	// (possibly transitively) imports it — the "why" for diagnostics.
	simVia map[string]string
	// ctrlImports lists explicit-ctrl packages each sim package imports —
	// contract violations reported at the importing package.
	ctrlImports map[string][]string
}

// ManifestFacts returns facts backed by the manifest alone (no import
// propagation) — what fixture tests and single-package runs use.
func ManifestFacts(m *Manifest) *Facts {
	if m == nil {
		m = DefaultManifest()
	}
	return &Facts{Manifest: m}
}

// ComputeFacts closes the manifest's sim set under the module import
// graph: every package transitively imported by an explicit sim package
// becomes sim unless the manifest explicitly lists it ctrl — in which
// case the offending import edge is recorded as a contract violation.
// imports maps each module package to its module-local direct imports.
func ComputeFacts(m *Manifest, imports map[string][]string) *Facts {
	if m == nil {
		m = DefaultManifest()
	}
	f := &Facts{
		Manifest:    m,
		effective:   map[string]Role{},
		simVia:      map[string]string{},
		ctrlImports: map[string][]string{},
	}
	for path := range imports {
		f.effective[path] = m.PackageRole(path)
	}
	// Deterministic BFS from the explicit sim roots.
	var queue []string
	for path := range imports {
		if f.effective[path] == RoleSim {
			queue = append(queue, path)
		}
	}
	sort.Strings(queue)
	for len(queue) > 0 {
		from := queue[0]
		queue = queue[1:]
		for _, dep := range imports[from] {
			switch m.PackageRole(dep) {
			case RoleCtrl:
				if f.effective[from] == RoleSim {
					f.ctrlImports[from] = append(f.ctrlImports[from], dep)
				}
			case RoleSim:
				// Already a root.
			default:
				if f.effective[dep] != RoleSim {
					f.effective[dep] = RoleSim
					if f.simVia[dep] == "" {
						f.simVia[dep] = from
					}
					queue = append(queue, dep)
				}
			}
		}
	}
	for p := range f.ctrlImports {
		sort.Strings(f.ctrlImports[p])
	}
	return f
}

// Role returns the effective role of an import path: the propagated role
// when the import graph was supplied, otherwise the manifest's explicit
// role. Unlisted, unreached packages are RoleUnknown (unconstrained).
func (f *Facts) Role(path string) Role {
	if f == nil {
		return RoleUnknown
	}
	if f.effective != nil {
		if r, ok := f.effective[path]; ok {
			return r
		}
	}
	return f.Manifest.PackageRole(path)
}

// SimVia explains why a package is effectively sim: "" when it is an
// explicit manifest root, otherwise one sim package that imports it.
func (f *Facts) SimVia(path string) string {
	if f == nil {
		return ""
	}
	return f.simVia[path]
}

// CtrlImports lists the explicit-ctrl packages a sim package imports —
// each one a sim/ctrl contract violation.
func (f *Facts) CtrlImports(path string) []string {
	if f == nil {
		return nil
	}
	return f.ctrlImports[path]
}
