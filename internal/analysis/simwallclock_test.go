package analysis

import (
	"strings"
	"testing"
)

func TestSimWallClock(t *testing.T) {
	// Loaded as a repro/internal/runtime subpackage, the fixture is sim.
	runFixture(t, SimWallClock, "simwallclock", "repro/internal/runtime/simwcfix")
}

func TestSimWallClockRetryExemption(t *testing.T) {
	// A core/retry path inside a sim subtree: WallSleep is blessed, its
	// siblings are not.
	runFixture(t, SimWallClock, "simwallclock_retry", "repro/internal/runtime/core/retry")
}

func TestSimWallClockCtrlPackagesUnconstrained(t *testing.T) {
	// The same wall-clock-heavy code loaded under a ctrl path draws no
	// findings: reading the clock is the control plane's job.
	pkg := loadFixture(t, "simwallclock_retry", "repro/internal/dist/retry")
	if diags := RunPackage(pkg, []*Analyzer{SimWallClock}); len(diags) != 0 {
		t.Fatalf("ctrl-role package should be unconstrained, got %v", diags)
	}
}

func TestSimWallClockReportsCtrlImports(t *testing.T) {
	// Computed facts say this sim package imports a ctrl package ("sort"
	// stands in — fixtures cannot import module packages).
	m, err := ParseManifest("package sim repro/internal/runtime\npackage ctrl sort\n")
	if err != nil {
		t.Fatal(err)
	}
	const pkgPath = "repro/internal/runtime/importfix"
	facts := ComputeFacts(m, map[string][]string{pkgPath: {"sort"}})
	pkg := loadFixture(t, "simwallclock_import", pkgPath)
	diags := RunPackageFacts(pkg, []*Analyzer{SimWallClock}, facts)
	if len(diags) != 1 {
		t.Fatalf("want exactly the import violation, got %v", diags)
	}
	if !strings.Contains(diags[0].Message, `imports ctrl-only package sort`) {
		t.Fatalf("unexpected message: %s", diags[0].Message)
	}
}

func TestSimWallClockPropagatedRole(t *testing.T) {
	// A package nobody lists becomes sim when a sim package imports it,
	// and the diagnostic explains the chain.
	m, err := ParseManifest("package sim repro/internal/online\n")
	if err != nil {
		t.Fatal(err)
	}
	const helper = "repro/helper"
	facts := ComputeFacts(m, map[string][]string{
		"repro/internal/online": {helper},
		helper:                  nil,
	})
	if got := facts.Role(helper); got != RoleSim {
		t.Fatalf("helper role = %v, want sim", got)
	}
	pkg := loadFixture(t, "simwallclock_retry", helper)
	diags := RunPackageFacts(pkg, []*Analyzer{SimWallClock}, facts)
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "imported by sim package repro/internal/online") {
			found = true
		}
	}
	if !found {
		t.Fatalf("want a diagnostic explaining the propagated role, got %v", diags)
	}
}
