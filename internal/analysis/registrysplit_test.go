package analysis

import "testing"

func TestRegistrySplit(t *testing.T) {
	runFixture(t, RegistrySplit, "registrysplit", "repro/fixture/internal/obs")
}

func TestManifestMetricRoles(t *testing.T) {
	m := DefaultManifest()
	cases := []struct {
		name string
		want Role
	}{
		{"llmpq_engine_steps_total", RoleSim},
		{"llmpq_solver_runs_total", RoleSim},
		{"llmpq_dist_heartbeats_total", RoleCtrl},
		{"llmpq_pipeline_stage_seconds", RoleCtrl},
		// The HTTP front door's wall-clock families are ctrl; the online
		// simulation it embeds stays sim.
		{"llmpq_serve_http_requests_total", RoleCtrl},
		{"llmpq_online_completed_total", RoleSim},
		// Exact sim names override the llmpq_dist_* ctrl wildcard.
		{"llmpq_dist_workers", RoleSim},
		{"llmpq_dist_stage_calls_total", RoleSim},
		{"llmpq_dist_injected_conn_drops_total", RoleSim},
		// The coordinator journal and reattach families are wall-clock
		// control-plane state.
		{"llmpq_journal_appends_total", RoleCtrl},
		{"llmpq_journal_replayed_records", RoleCtrl},
		{"llmpq_dist_reattach_total", RoleCtrl},
		{"unrelated_family", RoleUnknown},
	}
	for _, c := range cases {
		if got := m.MetricRole(c.name); got != c.want {
			t.Errorf("MetricRole(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestManifestPackageRoles(t *testing.T) {
	m := DefaultManifest()
	cases := []struct {
		path string
		want Role
	}{
		{"repro/internal/assigner", RoleSim},
		{"repro/internal/assigner/sub", RoleSim},
		{"repro/internal/dist", RoleCtrl},
		{"repro/internal/journal", RoleCtrl},
		{"repro/internal/serve", RoleCtrl},
		{"repro/cmd/llmpq-vet", RoleCtrl},
		{"repro/internal/core/floats", RoleUnknown},
		// Prefix matching is per path segment, not per byte.
		{"repro/internal/distother", RoleUnknown},
	}
	for _, c := range cases {
		if got := m.PackageRole(c.path); got != c.want {
			t.Errorf("PackageRole(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
