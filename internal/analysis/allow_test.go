package analysis

import "testing"

func TestAllowDirectives(t *testing.T) {
	runFixture(t, SimWallClock, "allowdir", "repro/internal/runtime/allowfix")
}
