package fixture

import (
	"math/rand"
	"time"
)

func draw(seed int64) int {
	n := rand.Intn(10) // want "shared global source"
	rng := rand.New(rand.NewSource(seed))
	n += rng.Intn(10)                            // methods on a seeded *rand.Rand are fine
	src := rand.NewSource(time.Now().UnixNano()) // want "time.Now"
	n += rand.New(src).Intn(10)
	rand.Shuffle(2, func(i, j int) {}) // want "shared global source"
	n += rand.Intn(2)                  //llmpq:ignore seededrand demo of a justified suppression
	return n
}
