package fixture

import (
	"math/rand"
	"time"
)

func draw(seed int64) int {
	n := rand.Intn(10) // want "shared global source"
	rng := rand.New(rand.NewSource(seed))
	n += rng.Intn(10)                            // methods on a seeded *rand.Rand are fine
	src := rand.NewSource(time.Now().UnixNano()) // want "time.Now"
	n += rand.New(src).Intn(10)
	rand.Shuffle(2, func(i, j int) {}) // want "shared global source"
	n += rand.Intn(2)                  //llmpq:ignore seededrand demo of a justified suppression
	return n
}

// chaosSchedule mirrors the fault-injector idiom: schedules must derive
// every draw from an explicit seed so runs replay byte-for-byte.
func chaosSchedule(seed int64, stages int) []float64 {
	at := make([]float64, stages)
	rng := rand.New(rand.NewSource(seed ^ 0x5eed)) // derived seed is fine
	for i := range at {
		at[i] = rng.Float64()
	}
	if rand.Float64() < 0.5 { // want "shared global source"
		at[0] = 0
	}
	wall := rand.New(rand.NewSource(time.Now().Unix())) // want "time.Now" "time.Now"
	at[stages-1] += wall.Float64()
	return at
}
