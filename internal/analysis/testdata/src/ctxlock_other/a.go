package fixture

import "time"

// Outside internal/runtime and internal/online the goroutine-join and
// time.Sleep rules do not apply; nothing here should be flagged.
func backgroundWork() {
	go func() {
		_ = time.Now()
	}()
	time.Sleep(time.Nanosecond)
}
