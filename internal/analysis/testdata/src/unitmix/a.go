package fixture

func gibToBytes(gib float64) float64 { return gib * (1 << 30) }

func cost() float64 {
	var shardBytes float64 = 1024
	var memGiB float64 = 2
	var latencySec float64 = 0.5
	var decodeMs float64 = 7
	var totalTokens float64 = 64
	var tokPerSec float64 = 100

	ok1 := shardBytes + gibToBytes(memGiB) // conversion helper names the unit
	bad1 := shardBytes + memGiB            // want "mixes bytes and GiB"
	bad2 := latencySec - decodeMs          // want "mixes sec and ms"
	cmp := latencySec < decodeMs           // want "mixes sec and ms"
	ok2 := latencySec * tokPerSec          // products form conversions/rates
	bad3 := tokPerSec + latencySec         // want "mixes per-sec and sec"
	ok3 := totalTokens + 3                 // bare literals carry no unit
	shardBytes += memGiB                   // want "mixes bytes and GiB"
	if cmp {
		return ok1 + ok2 + ok3
	}
	return bad1 + bad2 + bad3 + shardBytes
}
