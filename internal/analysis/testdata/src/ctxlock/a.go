package fixture

import (
	"sync"
	"time"
)

type shard struct {
	mu sync.Mutex
	n  int
}

func byValue(s shard) int { // want "parameter passes sync.Mutex by value"
	return s.n
}

func (s shard) get() int { // want "receiver passes sync.Mutex by value"
	return s.n
}

func copyShard(a *shard) int {
	b := *a // want "assignment copies sync.Mutex"
	return b.n
}

func pipeline(done chan int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // joined through the WaitGroup
		defer wg.Done()
	}()
	go func() { // joined through the channel
		done <- 1
	}()
	go func() { // want "goroutine has no join"
		_ = time.Now()
	}()
	wg.Wait()
	time.Sleep(time.Millisecond) // want "time.Sleep in a pipeline hot path"
}
