package fixture

import "math"

func compare(a, b float64) bool {
	if a == 0 { // zero-sentinel checks are exact by construction
		return false
	}
	if a != a { // NaN probe
		return true
	}
	if a == math.Inf(1) { // infinities are exact
		return false
	}
	eq := a == b    // want "float == comparison"
	ne := a != 3.14 // want "float != comparison"
	var f32 float32
	odd := f32 == 1.5 // want "float == comparison"
	return eq || ne || odd
}
