// Package distfix exercises the goroleak analyzer: loaded as a
// subpackage of repro/internal/dist, one of the two packages in scope.
package distfix

import (
	"context"
	"sync"
)

var hub = make(chan int)

// A bare busy loop cannot be awaited or cancelled.
func leaks() {
	go func() { // want "goroutine has no join signal"
		for i := 0; ; i++ {
			_ = i
		}
	}()
}

// A done channel in the body is a join signal.
func joinsViaChannel(done chan struct{}) {
	go func() {
		<-done
	}()
}

// ctx.Done() selects count: the receive is channel traffic.
func joinsViaContext(ctx context.Context) {
	go func() {
		select {
		case <-ctx.Done():
		}
	}()
}

// WaitGroup discipline counts.
func joinsViaWaitGroup(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}

func spin() {
	for {
	}
}

// A named callee with no signal anywhere leaks.
func leaksNamed() {
	go spin() // want "goroutine has no join signal"
}

func pump() {
	hub <- 1
}

// The callee's summary shows channel traffic.
func joinsNamed() {
	go pump()
}

func callsPump() { pump() }

// Transitive: the signal is one call deeper.
func joinsTransitively() {
	go callsPump()
}

// A joinable argument makes the goroutine awaitable by construction.
func worker(done chan struct{}) {
	for i := 0; ; i++ {
		_ = i
	}
}

func joinsViaArg(done chan struct{}) {
	go worker(done)
}

type server struct {
	done chan struct{}
}

func (s *server) loop() {
	for i := 0; ; i++ {
		_ = i
	}
}

// The receiver struct holds a done channel: joinable through it.
func joinsViaReceiver(s *server) {
	go s.loop()
}
