package fixture

type Plan struct {
	Bits   []int
	KVBits int
}

func apply(bits int) int { return bits }

func quantize(wbits, kvBits int) int { return wbits + kvBits }

func build() []int {
	p := Plan{Bits: []int{3, 4, 8, 16}, KVBits: 8} // in-set literals are fine
	q := Plan{Bits: []int{3, 5, 16}, KVBits: 2}    // want "bitwidth 5"
	sum := apply(4)
	sum += apply(7)       // want "bitwidth 7"
	sum += quantize(6, 2) // want "bitwidth 6"
	p.KVBits = 12         // want "bitwidth 12"
	q.KVBits = 0          // 0 is the unset/FP16 sentinel
	layerBits := 5        // want "bitwidth 5"
	demoBits := 9         //llmpq:ignore bitwidthset demo of a justified suppression
	return []int{sum, p.KVBits, q.KVBits, layerBits, demoBits}
}
