// Package allowfix exercises the llmpq:allow directive machinery, using
// simwallclock (the package loads as a repro/internal/runtime
// subpackage, so it is sim) as the analyzer being suppressed.
package allowfix

import "time"

var sink time.Time

// Trailing-comment suppression: directive and finding share a line.
func trailing() {
	sink = time.Now() //llmpq:allow(simwallclock): fixture exercises trailing suppression
}

// Comment-above suppression: the directive covers the next line.
func above() {
	//llmpq:allow(simwallclock): fixture exercises comment-above suppression
	sink = time.Now()
}

// A reason-less directive suppresses nothing and is itself a finding.
func reasonless() {
	//llmpq:allow(simwallclock) // want "needs a justification"
	sink = time.Now() // want "time.Now in sim-deterministic package"
}

// Naming an analyzer that does not exist is a finding.
func unknownAnalyzer() {
	//llmpq:allow(bogus): no such analyzer // want "names no known analyzer"
	sink = time.Now() // want "time.Now in sim-deterministic package"
}

// A directive that suppresses nothing (for an analyzer that ran) rots
// the contract and is reported.
func unused() {
	//llmpq:allow(simwallclock): nothing to suppress here // want "unused llmpq:allow"
	sink = time.Unix(0, 0)
}

// A directive for an analyzer that did NOT run this pass is left alone:
// partial runs must not flag other analyzers' allowances.
func unusedButNotRun() {
	//llmpq:allow(errdrop): errdrop is not part of this fixture run
	sink = time.Unix(0, 0)
}
