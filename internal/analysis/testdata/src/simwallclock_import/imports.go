// Package importfix exercises the sim-imports-ctrl violation: the test
// supplies computed facts where this package is sim and its "sort"
// import is declared ctrl, standing in for a real control-plane package
// (fixtures cannot import module packages, so a stdlib path plays the
// ctrl role).
package importfix

import "sort"

func uses(xs []string) {
	sort.Strings(xs)
}
