// Package simwcfix exercises the simwallclock analyzer: loaded as a
// subpackage of repro/internal/runtime, so the manifest marks it sim.
package simwcfix

import "time"

func readsClock() time.Time {
	return time.Now() // want "time.Now in sim-deterministic package"
}

func measures(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since in sim-deterministic package"
}

func sleeps() {
	time.Sleep(time.Millisecond) // want "time.Sleep in sim-deterministic package"
}

func timers() {
	t := time.NewTimer(time.Second) // want "time.NewTimer in sim-deterministic package"
	defer t.Stop()
	select {
	case <-t.C:
	case <-time.After(time.Second): // want "time.After in sim-deterministic package"
	}
}

// Duration arithmetic and construction never touch the wall clock.
func durationsAreFine() time.Duration {
	return 5 * time.Second
}

func epochIsFine() time.Time {
	return time.Unix(0, 0)
}

func allowed() time.Time {
	return time.Now() //llmpq:allow(simwallclock): fixture exercises trailing-comment suppression
}
