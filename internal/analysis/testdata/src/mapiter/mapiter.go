// Package mapiterfix exercises the mapiter analyzer: loaded as a
// subpackage of repro/internal/runtime, so the manifest marks it sim.
package mapiterfix

import (
	"fmt"
	"io"
	"sort"
)

// Shape 1: emitting directly from a map range is nondeterministic.
func emitInRange(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s %d\n", k, v) // want "Fprintf inside map iteration"
	}
}

// Shape 2: collecting into a slice and emitting it unsorted.
func emitUnsorted(w io.Writer, m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	fmt.Fprintln(w, keys) // want "Fprintln consumes keys"
}

// The blessed idiom: collect, sort, emit.
func emitSorted(w io.Writer, m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s %d\n", k, m[k])
	}
}

// Sorted on every path: both branches sort before the emit.
func emitBranchSorted(w io.Writer, m map[string]int, desc bool) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	if desc {
		sort.Sort(sort.Reverse(sort.StringSlice(keys)))
	} else {
		sort.Strings(keys)
	}
	fmt.Fprintln(w, keys)
}

// Sorted on only one path: the else branch reaches the emit unsorted.
func emitHalfSorted(w io.Writer, m map[string]int, really bool) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	if really {
		sort.Strings(keys)
	}
	fmt.Fprintln(w, keys) // want "Fprintln consumes keys"
}

// A returned slice leaves the function; the caller owns the ordering
// question and the check stays quiet.
func collectOnly(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// Ranging over a slice is ordered; no finding.
func sliceRangeIsFine(w io.Writer, xs []string) {
	for _, x := range xs {
		fmt.Fprintln(w, x)
	}
}
