// Package retry exercises the WallSleep exemption: loaded under a path
// containing core/retry inside a sim subtree, the blessed WallSleep
// wrapper may use real timers while its siblings may not.
package retry

import (
	"context"
	"time"
)

func WallSleep(ctx context.Context, delaySec float64) error {
	t := time.NewTimer(time.Duration(delaySec * float64(time.Second)))
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func notBlessed() time.Time {
	return time.Now() // want "time.Now in sim-deterministic package"
}
