// Package obsfix exercises the registrysplit analyzer. It is loaded
// under a path ending internal/obs so its local Registry type stands in
// for the real one (fixtures cannot import module packages).
package obsfix

// Registry mirrors the repro/internal/obs API surface the analyzer
// keys on: the type name, package-path suffix, and method names.
type Registry struct{ names []string }

func (r *Registry) Counter(name string) *Counter {
	r.names = append(r.names, name)
	return &Counter{}
}

func (r *Registry) Gauge(name string) *Counter   { return &Counter{} }
func (r *Registry) Histogram(name string) *Counter { return &Counter{} }

// Counter is a stub metric.
type Counter struct{}

func (c *Counter) Inc() {}

// Obs is the deterministic sim registry; CtrlObs the wall-clock one.
var Obs = &Registry{}
var CtrlObs = &Registry{}

const replansFamily = "llmpq_failover_replans_total"

func direct() {
	Obs.Counter("llmpq_engine_steps_total").Inc()       // sim family on sim registry
	CtrlObs.Counter("llmpq_dist_heartbeats_total").Inc() // ctrl family on ctrl registry

	Obs.Counter("llmpq_dist_heartbeats_total").Inc() // want "is a ctrl family per simctrl.manifest but is registered on the sim registry"
	CtrlObs.Counter("llmpq_engine_steps_total").Inc() // want "is a sim family per simctrl.manifest but is registered on the ctrl registry"

	// Exact sim names carve exceptions out of the llmpq_dist_* ctrl glob.
	Obs.Counter("llmpq_dist_workers").Inc()
	CtrlObs.Gauge("llmpq_dist_workers") // want "is a sim family per simctrl.manifest but is registered on the ctrl registry"

	// Constant-folded names classify like literals.
	CtrlObs.Counter(replansFamily).Inc() // want "is a sim family per simctrl.manifest but is registered on the ctrl registry"

	// Unlisted families are unconstrained.
	Obs.Counter("some_other_family").Inc()
	CtrlObs.Counter("some_other_family").Inc()
}

// ctrlInc forwards its parameter as a family name on the ctrl registry;
// the analyzer checks literal names at the call sites.
func ctrlInc(name string) {
	CtrlObs.Counter(name).Inc()
}

func viaWrapper() {
	ctrlInc("llmpq_dist_resends_total")
	ctrlInc("llmpq_engine_steps_total") // want "is a sim family per simctrl.manifest but is registered on the ctrl registry"
}

// serveHandler mirrors the HTTP front door (internal/serve): wall-clock
// llmpq_serve_* families belong on the ctrl registry, and a sim
// llmpq_online_* family registered from a serve handler is exactly the
// leak that would poison the byte-diffed artifact.
func serveHandler() {
	CtrlObs.Counter("llmpq_serve_http_requests_total").Inc()
	CtrlObs.Counter("llmpq_online_completed_total").Inc() // want "is a sim family per simctrl.manifest but is registered on the ctrl registry"
	Obs.Counter("llmpq_serve_http_shed_total").Inc()      // want "is a ctrl family per simctrl.manifest but is registered on the sim registry"
}

// dynamic names cannot be classified and are skipped.
func dynamic(suffix string) {
	Obs.Counter("llmpq_" + suffix).Inc()
}

// neutral receiver names stay unknown and are skipped.
func neutral(r *Registry) {
	r.Counter("llmpq_dist_heartbeats_total").Inc()
}
