// Package errdropfix exercises the errdrop analyzer: loaded as a
// subpackage of repro/internal/dist, one of the two packages in scope.
package errdropfix

import (
	"bytes"
	"net"
	"strings"
	"time"
)

type conn struct{ c net.Conn }

func (c *conn) Close() error { return c.c.Close() }

type msg struct{}

func (c *conn) send(m *msg) error { return nil }

func writeFrame(c net.Conn, payload []byte) error {
	_, err := c.Write(payload)
	return err
}

func drops(c *conn, nc net.Conn, deadline time.Time) {
	_ = c.Close()                    // want "error from Close assigned to blank"
	_ = nc.SetReadDeadline(deadline) // want "error from SetReadDeadline assigned to blank"
	c.send(&msg{})                   // want "error from send result discarded"
	writeFrame(nc, nil)              // want "error from writeFrame result discarded"
	defer c.Close()                  // want "error from Close result discarded by defer"
}

func dropsTuple(nc net.Conn, b []byte) {
	n, _ := nc.Write(b) // want "error from Write assigned to blank"
	_ = n
}

func handles(c *conn, nc net.Conn, b []byte) error {
	if err := c.Close(); err != nil {
		return err
	}
	if _, err := nc.Write(b); err != nil {
		return err
	}
	if err := writeFrame(nc, b); err != nil {
		return err
	}
	return c.send(&msg{})
}

func justified(c *conn) {
	_ = c.Close() //llmpq:allow(errdrop): teardown is best-effort; the peer may already be gone
}

// In-memory builders never fail; dropping their nil errors is idiomatic.
func builders(buf *bytes.Buffer) string {
	var b strings.Builder
	b.WriteByte('{')
	b.WriteString("key")
	buf.WriteString("value")
	return b.String()
}

func (c *conn) ping() error { return nil }

// Calls outside the curated set stay unchecked even when they return
// errors — the general rule belongs to errcheck, not this analyzer.
func uncurated(c *conn) {
	c.ping()
	_ = c.ping()
}
