package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// UnitMix flags additive arithmetic and comparisons between numeric
// expressions whose names carry incompatible unit suffixes — the classic
// cost-model bug class where bytes meet GiB or seconds meet milliseconds
// without a conversion. Units are inferred from identifier suffixes
// (LatencySec, shardBytes, memGB, TokPerSec, ...); a call to a helper whose
// name carries the target suffix (e.g. GiBToBytes) counts as an explicit
// conversion. Multiplication and division are exempt: they are how
// conversions and rates are formed.
var UnitMix = &Analyzer{
	Name: "unitmix",
	Doc:  "additive arithmetic/comparisons must not mix unit-suffixed quantities (Bytes vs GiB, Sec vs Ms, ...)",
	Run:  runUnitMix,
}

// unitSuffixes maps a name suffix to its canonical unit, longest first so
// "Millis" wins over "Ms"-style overlaps.
var unitSuffixes = []struct{ suffix, unit string }{
	{"Seconds", "sec"},
	{"Millis", "ms"},
	{"Bytes", "bytes"},
	{"Tokens", "tokens"},
	{"Toks", "tokens"},
	{"Secs", "sec"},
	{"GiB", "GiB"},
	{"Sec", "sec"},
	{"GB", "GB"},
	{"MB", "MB"},
	{"KB", "KB"},
	{"Ms", "ms"},
	{"Ns", "ns"},
	{"Us", "us"},
}

// unitOfName returns the canonical unit carried by an identifier, or "".
// Rate names (TokPerSec, BytesPerMs) form their own unit class "per-X" so
// a rate never silently adds to a plain duration.
func unitOfName(name string) string {
	for _, s := range unitSuffixes {
		if len(name) <= len(s.suffix) || !strings.HasSuffix(name, s.suffix) {
			continue
		}
		// The character before the suffix must not be lowercase when the
		// suffix starts uppercase... suffixes here are all capitalized, so
		// any match on a camelCase boundary is intentional enough; but
		// reject e.g. "Tombs" matching nothing — HasSuffix already exact.
		if strings.Contains(name[:len(name)-len(s.suffix)], "Per") ||
			strings.HasSuffix(name[:len(name)-len(s.suffix)], "per") {
			return "per-" + s.unit
		}
		return s.unit
	}
	return ""
}

// unitOf infers the unit of an expression from the identifiers that
// produce it.
func unitOf(info *types.Info, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return unitOfName(e.Name)
	case *ast.SelectorExpr:
		return unitOfName(e.Sel.Name)
	case *ast.CallExpr:
		// A helper named for its result unit is an explicit conversion.
		switch fun := ast.Unparen(e.Fun).(type) {
		case *ast.Ident:
			return unitOfName(fun.Name)
		case *ast.SelectorExpr:
			return unitOfName(fun.Sel.Name)
		}
		return ""
	case *ast.IndexExpr:
		return unitOf(info, e.X)
	case *ast.ParenExpr:
		return unitOf(info, e.X)
	case *ast.UnaryExpr:
		return unitOf(info, e.X)
	case *ast.BinaryExpr:
		// Same-unit sums propagate their unit; anything else is opaque
		// (products/quotients are conversions).
		if e.Op == token.ADD || e.Op == token.SUB {
			a, b := unitOf(info, e.X), unitOf(info, e.Y)
			if a == b {
				return a
			}
		}
		return ""
	}
	return ""
}

func isNumeric(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}

func runUnitMix(p *Pass) {
	check := func(pos token.Pos, op token.Token, x, y ast.Expr) {
		switch op {
		case token.ADD, token.SUB, token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ,
			token.ADD_ASSIGN, token.SUB_ASSIGN:
		default:
			return
		}
		if !isNumeric(p.Info, x) || !isNumeric(p.Info, y) {
			return
		}
		ux, uy := unitOf(p.Info, x), unitOf(p.Info, y)
		if ux == "" || uy == "" || ux == uy {
			return
		}
		p.Reportf(pos, "mixes %s and %s in %q without an explicit conversion helper", ux, uy, op.String())
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				check(n.OpPos, n.Op, n.X, n.Y)
			case *ast.AssignStmt:
				if (n.Tok == token.ADD_ASSIGN || n.Tok == token.SUB_ASSIGN) && len(n.Lhs) == 1 && len(n.Rhs) == 1 {
					check(n.TokPos, n.Tok, n.Lhs[0], n.Rhs[0])
				}
			}
			return true
		})
	}
}
