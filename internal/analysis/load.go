package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked module package, ready for analyzer passes.
type Package struct {
	Path  string // import path, e.g. repro/internal/assigner
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	inspOnce sync.Once
	insp     *Inspector
}

// Loader type-checks module packages from source with no external
// dependencies: intra-module imports are resolved recursively against the
// module root, everything else (the standard library) is delegated to the
// compiler's source importer rooted at GOROOT.
type Loader struct {
	Fset    *token.FileSet
	ModRoot string // absolute module root (directory holding go.mod)
	ModPath string // module path from go.mod, e.g. "repro"

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader builds a loader for the module rooted at modRoot.
func NewLoader(modRoot, modPath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModRoot: modRoot,
		ModPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
}

// FindModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func FindModule(dir string) (root, path string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		gomod := filepath.Join(dir, "go.mod")
		if data, rerr := os.ReadFile(gomod); rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s has no module line", gomod)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Import implements types.Importer: module paths load from source under the
// module root, all other paths fall through to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		pkg, err := l.LoadDir(filepath.Join(l.ModRoot, strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// LoadDir parses and type-checks the package in dir (absolute or relative
// to the module root), excluding _test.go files. Results are cached.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(l.ModRoot, dir)
	}
	dir = filepath.Clean(dir)
	rel, err := filepath.Rel(l.ModRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("analysis: %s is outside module %s", dir, l.ModRoot)
	}
	importPath := l.ModPath
	if rel != "." {
		importPath = l.ModPath + "/" + filepath.ToSlash(rel)
	}
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", dir, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}
	info := newInfo()
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-check %s: %w", importPath, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", importPath, err)
	}
	pkg := &Package{Path: importPath, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// PackageDirs walks root and returns every directory holding a buildable
// (non-test) Go package, skipping testdata, hidden, and underscore dirs.
func PackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	uniq := dirs[:0]
	for i, d := range dirs {
		if i == 0 || d != dirs[i-1] {
			uniq = append(uniq, d)
		}
	}
	return uniq, nil
}
