package analysis

import (
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// writeModule lays out a throwaway Go module under t.TempDir and returns
// its root. Keys are slash-separated paths relative to the root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		p := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// demoModule is the shared fixture module: a healthy import chain
// (app -> util + stdlib), a type error, an import cycle, a test-only
// package, skip-worthy directories, and the escape-analysis fixture.
func demoModule(t *testing.T) string {
	t.Helper()
	root := writeModule(t, map[string]string{
		"go.mod": "module demo\n\ngo 1.22\n",
		"util/util.go": `package util

func Double(n int) int { return 2 * n }
`,
		"app/app.go": `package app

import (
	"strings"

	"demo/util"
)

func Shout(s string) string { return strings.ToUpper(s) }

func Quad(n int) int { return util.Double(util.Double(n)) }
`,
		"broken/broken.go": `package broken

func Bad() int { return "not an int" }
`,
		"cyca/a.go": `package cyca

import "demo/cycb"

var A = cycb.B + 1
`,
		"cycb/b.go": `package cycb

import "demo/cyca"

var B = cyca.A + 1
`,
		"onlytest/only_test.go": `package onlytest
`,
		"testdata/frag/frag.go": `package frag
`,
		".hidden/h.go": `package hidden
`,
		"_skip/s.go": `package skip
`,
		"esc/esc.go": `package esc

import "sort"

type box struct{ s []int }

func sink(v []int) {}

func routes(ch chan []int, b *box) []int {
	returned := []int{1}
	addressed := 2
	ptr := &addressed
	_ = ptr
	sent := []int{3}
	ch <- sent
	stored := []int{4}
	b.s = stored
	arg := []int{5}
	sink(arg)
	captured := []int{6}
	f := func() int { return len(captured) }
	_ = f()
	kept := []int{7}
	kept = append(kept, 8)
	sort.Ints(kept)
	if len(kept) > 0 {
		kept[0] = 9
	}
	return returned
}
`,
	})
	if err := os.MkdirAll(filepath.Join(root, "empty"), 0o755); err != nil {
		t.Fatal(err)
	}
	return root
}

func TestFindModule(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":       "module demo\n\ngo 1.22\n",
		"a/b/keep.txt": "x\n",
	})
	gotRoot, gotPath, err := FindModule(filepath.Join(root, "a", "b"))
	if err != nil {
		t.Fatalf("FindModule: %v", err)
	}
	if gotRoot != root || gotPath != "demo" {
		t.Fatalf("FindModule = (%q, %q), want (%q, %q)", gotRoot, gotPath, root, "demo")
	}

	noLine := writeModule(t, map[string]string{"go.mod": "// no module directive\n"})
	if _, _, err := FindModule(noLine); err == nil || !strings.Contains(err.Error(), "no module line") {
		t.Fatalf("FindModule without module line: err = %v, want 'no module line'", err)
	}

	if _, _, err := FindModule(t.TempDir()); err == nil || !strings.Contains(err.Error(), "no go.mod") {
		t.Fatalf("FindModule without go.mod: err = %v, want 'no go.mod'", err)
	}
}

func TestLoaderLoadDir(t *testing.T) {
	root := demoModule(t)
	l := NewLoader(root, "demo")

	pkg, err := l.LoadDir("app") // relative to the module root
	if err != nil {
		t.Fatalf("LoadDir(app): %v", err)
	}
	if pkg.Path != "demo/app" || pkg.Types.Name() != "app" {
		t.Fatalf("LoadDir(app) = path %q name %q", pkg.Path, pkg.Types.Name())
	}

	// Absolute path resolves to the same cached *Package.
	again, err := l.LoadDir(filepath.Join(root, "app"))
	if err != nil {
		t.Fatalf("LoadDir(abs app): %v", err)
	}
	if again != pkg {
		t.Fatal("LoadDir did not return the cached package on the second load")
	}

	// util was loaded transitively while checking app.
	util, err := l.LoadDir("util")
	if err != nil {
		t.Fatalf("LoadDir(util): %v", err)
	}
	if util.Path != "demo/util" {
		t.Fatalf("util path = %q", util.Path)
	}

	// Import routes module paths through LoadDir and stdlib paths through
	// the source importer.
	if tp, err := l.Import("demo/util"); err != nil || tp != util.Types {
		t.Fatalf("Import(demo/util) = %v, %v; want cached util types", tp, err)
	}
	if tp, err := l.Import("strings"); err != nil || tp.Path() != "strings" {
		t.Fatalf("Import(strings) = %v, %v", tp, err)
	}

	if _, err := l.LoadDir(t.TempDir()); err == nil || !strings.Contains(err.Error(), "outside module") {
		t.Fatalf("LoadDir outside module: err = %v, want 'outside module'", err)
	}
	if _, err := l.LoadDir("broken"); err == nil || !strings.Contains(err.Error(), "type-check") {
		t.Fatalf("LoadDir(broken): err = %v, want type-check error", err)
	}
	if _, err := l.LoadDir("cyca"); err == nil || !strings.Contains(err.Error(), "import cycle") {
		t.Fatalf("LoadDir(cyca): err = %v, want import-cycle error", err)
	}
	if _, err := l.LoadDir("empty"); err == nil {
		t.Fatal("LoadDir(empty) succeeded, want error")
	}
	if _, err := l.LoadDir("onlytest"); err == nil {
		t.Fatal("LoadDir(onlytest) succeeded, want error for a test-only package")
	}
}

func TestPackageDirs(t *testing.T) {
	root := demoModule(t)
	dirs, err := PackageDirs(root)
	if err != nil {
		t.Fatalf("PackageDirs: %v", err)
	}
	want := []string{
		filepath.Join(root, "app"),
		filepath.Join(root, "broken"),
		filepath.Join(root, "cyca"),
		filepath.Join(root, "cycb"),
		filepath.Join(root, "esc"),
		filepath.Join(root, "util"),
	}
	if !reflect.DeepEqual(dirs, want) {
		t.Fatalf("PackageDirs = %v, want %v", dirs, want)
	}

	if _, err := PackageDirs(filepath.Join(root, "does-not-exist")); err == nil {
		t.Fatal("PackageDirs on a missing root succeeded, want error")
	}
}

// TestFuncEscapes drives the conservative escape summary through every
// modelled route: return, address-of, channel send, store through a
// selector, escaping call argument, and closure capture — and confirms
// the modelled-pure idioms (append, len, sort.Ints, index store) do NOT
// make a value escape.
func TestFuncEscapes(t *testing.T) {
	root := demoModule(t)
	l := NewLoader(root, "demo")
	pkg, err := l.LoadDir("esc")
	if err != nil {
		t.Fatalf("LoadDir(esc): %v", err)
	}

	var fn *FuncInfo
	for _, fi := range pkg.Inspector().Funcs() {
		if fi.Decl.Name.Name == "routes" {
			fn = fi
		}
	}
	if fn == nil {
		t.Fatal("routes not found in inspector summaries")
	}

	objByName := func(name string) types.Object {
		t.Helper()
		for id, obj := range pkg.Info.Defs {
			if obj != nil && id.Name == name {
				return obj
			}
		}
		t.Fatalf("no definition named %q", name)
		return nil
	}

	for _, name := range []string{"returned", "addressed", "sent", "stored", "arg", "captured"} {
		if !fn.Escapes(pkg.Info, objByName(name)) {
			t.Errorf("%s should escape", name)
		}
	}
	if fn.Escapes(pkg.Info, objByName("kept")) {
		t.Error("kept escapes, but append/len/sort/index-store are modelled as non-escaping")
	}

	if got := (Diagnostic{Analyzer: "mapiter", File: "x.go", Line: 3, Col: 7, Message: "m"}).String(); got != "x.go:3:7: [mapiter] m" {
		t.Fatalf("Diagnostic.String = %q", got)
	}
}
