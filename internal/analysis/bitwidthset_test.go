package analysis

import "testing"

func TestBitwidthSet(t *testing.T) {
	runFixture(t, BitwidthSet, "bitwidthset", "repro/internal/fixture")
}

func TestAllowedBitwidth(t *testing.T) {
	cases := []struct {
		v    int64
		kv   bool
		want bool
	}{
		{3, false, true}, {4, false, true}, {8, false, true}, {16, false, true},
		{0, false, true},  // unset sentinel
		{2, false, false}, // INT2 weights are out
		{2, true, true},   // ... but legal for KV cache
		{5, false, false}, {32, false, false}, {-4, true, false},
	}
	for _, c := range cases {
		if got := allowedBitwidth(c.v, c.kv); got != c.want {
			t.Errorf("allowedBitwidth(%d, kv=%v) = %v, want %v", c.v, c.kv, got, c.want)
		}
	}
}
