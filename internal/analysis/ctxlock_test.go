package analysis

import "testing"

func TestCtxLockInPipelinePackage(t *testing.T) {
	// The fixture pretends to live in internal/runtime so the
	// goroutine-join and time.Sleep rules apply.
	runFixture(t, CtxLock, "ctxlock", "repro/internal/runtime/fixture")
}

func TestCtxLockOutsidePipelinePackage(t *testing.T) {
	// Same analyzer, neutral package path: join/Sleep rules are scoped to
	// the pipeline packages, so the fixture must be clean.
	runFixture(t, CtxLock, "ctxlock_other", "repro/internal/experiments/fixture")
}
