package analysis

import "testing"

func TestErrDrop(t *testing.T) {
	runFixture(t, ErrDrop, "errdrop", "repro/internal/dist/fixture")
}

func TestErrDropOutOfScope(t *testing.T) {
	pkg := loadFixture(t, "errdrop", "repro/internal/assigner/fixture")
	for _, d := range RunPackage(pkg, []*Analyzer{ErrDrop}) {
		// The fixture's llmpq:allow(errdrop) directive correctly turns up
		// as unused out of scope; only errdrop findings would be wrong.
		if d.Analyzer == ErrDrop.Name {
			t.Fatalf("errdrop only covers dist and obs, got %v", d)
		}
	}
}
