package analysis

// The shared per-package inspector: one walk over the package builds the
// products every analyzer needs — parent links, per-function summaries
// (static callees, goroutine-join signals, registry-name forwarding), a
// lazy CFG, and a conservative escape set per function. Analyzers ask
// the Pass for the Inspector instead of re-walking the files, which is
// what lets the driver run many analyzers over one package cheaply.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"sync"
)

// RegForward records that a function forwards one of its string
// parameters as the family-name argument of a Registry.Counter / Gauge /
// Histogram call — `func (c *x) ctrlInc(name string)` style helpers. The
// registrysplit analyzer then checks literal names at the call sites.
type RegForward struct {
	ParamIndex int  // index into the function's (non-receiver) parameters
	Role       Role // role of the registry the name lands on
}

// FuncInfo is the per-function summary.
type FuncInfo struct {
	Decl *ast.FuncDecl
	Obj  *types.Func

	// Calls lists the statically resolved callees (package-local and
	// imported), in source order.
	Calls []*types.Func
	// JoinSignal reports the body communicates: channel send/receive/
	// close/range (which covers <-ctx.Done() selects) or a WaitGroup
	// method call — the signals that make a goroutine joinable.
	JoinSignal bool
	// RegForwards lists string parameters forwarded as metric names.
	RegForwards []RegForward

	cfgOnce sync.Once
	cfg     *CFG

	escOnce sync.Once
	escapes map[types.Object]bool
}

// CFG builds (once) and returns the function's control-flow graph, or
// nil for a body-less declaration.
func (fi *FuncInfo) CFG() *CFG {
	fi.cfgOnce.Do(func() {
		if fi.Decl != nil && fi.Decl.Body != nil {
			fi.cfg = BuildCFG(fi.Decl.Body)
		}
	})
	return fi.cfg
}

// Inspector is the shared package index.
type Inspector struct {
	pkg     *Package
	parents map[ast.Node]ast.Node
	funcs   []*FuncInfo
	byObj   map[*types.Func]*FuncInfo
}

// Inspector returns the package's shared inspector, building it on first
// use. Safe for concurrent analyzer passes.
func (p *Package) Inspector() *Inspector {
	p.inspOnce.Do(func() {
		p.insp = buildInspector(p)
	})
	return p.insp
}

func buildInspector(pkg *Package) *Inspector {
	in := &Inspector{
		pkg:     pkg,
		parents: map[ast.Node]ast.Node{},
		byObj:   map[*types.Func]*FuncInfo{},
	}
	for _, f := range pkg.Files {
		// Parent links for the whole file.
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if len(stack) > 0 {
				in.parents[n] = stack[len(stack)-1]
			}
			stack = append(stack, n)
			return true
		})
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fi := &FuncInfo{Decl: fd}
			if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				fi.Obj = obj
				in.byObj[obj] = fi
			}
			if fd.Body != nil {
				summarize(pkg.Info, fd, fi)
			}
			in.funcs = append(in.funcs, fi)
		}
	}
	return in
}

// Funcs returns the package's function summaries in source order.
func (in *Inspector) Funcs() []*FuncInfo { return in.funcs }

// FuncByObj resolves a summary from its types object, or nil.
func (in *Inspector) FuncByObj(obj *types.Func) *FuncInfo { return in.byObj[obj] }

// Parent returns the syntactic parent of a node, or nil.
func (in *Inspector) Parent(n ast.Node) ast.Node { return in.parents[n] }

// EnclosingFunc returns the FuncDecl lexically containing pos, or nil.
func (in *Inspector) EnclosingFunc(pos token.Pos) *FuncInfo {
	for _, fi := range in.funcs {
		if fi.Decl.Pos() <= pos && pos <= fi.Decl.End() {
			return fi
		}
	}
	return nil
}

// summarize fills one function's summary in a single body walk.
func summarize(info *types.Info, fd *ast.FuncDecl, fi *FuncInfo) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			fi.JoinSignal = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				fi.JoinSignal = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					fi.JoinSignal = true
				}
			}
		case *ast.CallExpr:
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				if fun.Name == "close" && isBuiltinIdent(info, fun) {
					fi.JoinSignal = true // builtin close: channel traffic
				}
				if callee, ok := info.Uses[fun].(*types.Func); ok {
					fi.Calls = append(fi.Calls, callee)
				}
			case *ast.SelectorExpr:
				if sel, ok := info.Selections[fun]; ok {
					recv := sel.Recv()
					if ptr, ok := recv.(*types.Pointer); ok {
						recv = ptr.Elem()
					}
					if lockKind(recv) == "sync.WaitGroup" {
						fi.JoinSignal = true
					}
				}
				if callee, ok := info.Uses[fun.Sel].(*types.Func); ok {
					fi.Calls = append(fi.Calls, callee)
				}
				recordRegForward(info, fd, n, fun, fi)
			}
		}
		return true
	})
}

// isBuiltinIdent reports whether the identifier denotes a language
// builtin (append, close, ...). go/types records builtins in Uses as
// *types.Builtin — they are not absent, a mistake easy to make.
func isBuiltinIdent(info *types.Info, id *ast.Ident) bool {
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}

// isObsRegistry reports whether t is (a pointer to) internal/obs.Registry.
func isObsRegistry(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/obs")
}

// registryMethods are the family-registration entry points.
var registryMethods = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}

// RegistryExprRole guesses which registry an expression denotes from its
// terminal identifier, the naming convention the two-registry split uses:
// anything spelled with "ctrl" is the control registry; a bare Obs / sim
// name is the deterministic sim registry; parameters and neutral names
// (r, reg) stay unknown and are skipped rather than guessed.
func RegistryExprRole(e ast.Expr) Role {
	var name string
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	case *ast.CallExpr:
		return RoleUnknown
	default:
		return RoleUnknown
	}
	lower := strings.ToLower(name)
	switch {
	case strings.Contains(lower, "ctrl"):
		return RoleCtrl
	case name == "Obs" || strings.Contains(lower, "sim"):
		return RoleSim
	default:
		return RoleUnknown
	}
}

// recordRegForward notes `fn(..., name string, ...)` bodies that pass a
// string parameter straight through as a registry family name.
func recordRegForward(info *types.Info, fd *ast.FuncDecl, call *ast.CallExpr, fun *ast.SelectorExpr, fi *FuncInfo) {
	if !registryMethods[fun.Sel.Name] || len(call.Args) == 0 {
		return
	}
	recvTV, ok := info.Types[fun.X]
	if !ok || !isObsRegistry(recvTV.Type) {
		return
	}
	role := RegistryExprRole(fun.X)
	if role == RoleUnknown {
		return
	}
	arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	obj := info.Uses[arg]
	if obj == nil {
		return
	}
	// Is the name argument one of fd's parameters?
	idx := 0
	if fd.Type.Params == nil {
		return
	}
	for _, field := range fd.Type.Params.List {
		for _, pname := range field.Names {
			if info.Defs[pname] == obj {
				fi.RegForwards = append(fi.RegForwards, RegForward{ParamIndex: idx, Role: role})
				return
			}
			idx++
		}
		if len(field.Names) == 0 {
			idx++
		}
	}
}

// Escapes reports whether a local object may leave the function — it is
// returned, captured by a closure, has its address taken, is assigned
// through a selector/index/deref, or is passed to a call other than the
// modelled pure helpers (append/len/cap/copy/delete and the sort
// package). Analyzers use it to stop tracking values they cannot follow.
func (fi *FuncInfo) Escapes(info *types.Info, obj types.Object) bool {
	fi.escOnce.Do(func() { fi.escapes = computeEscapes(info, fi.Decl) })
	return fi.escapes[obj]
}

func computeEscapes(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	esc := map[types.Object]bool{}
	if fd == nil || fd.Body == nil {
		return esc
	}
	mark := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				esc[obj] = true
			}
		}
	}
	var inClosure func(n ast.Node)
	inClosure = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					esc[obj] = true // captured: treat every reference as escaping
				}
			}
			return true
		})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			inClosure(n.Body)
			return false
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				mark(r)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				mark(n.X)
			}
		case *ast.SendStmt:
			mark(n.Value)
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				// Writing through a selector/index stores the RHS somewhere
				// the function no longer controls.
				if _, ok := ast.Unparen(lhs).(*ast.Ident); !ok {
					if i < len(n.Rhs) {
						mark(n.Rhs[i])
					}
				}
			}
		case *ast.CallExpr:
			if escapingCall(info, n) {
				for _, a := range n.Args {
					mark(a)
				}
			}
		}
		return true
	})
	return esc
}

// escapingCall reports whether passing a value to this call loses track
// of it. The modelled exceptions keep the common deterministic idioms
// analyzable: builtins and the sort package neither retain nor emit
// their arguments.
func escapingCall(info *types.Info, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if isBuiltinIdent(info, fun) {
			return false // builtin: append, len, cap, copy, delete, make
		}
		if callee, ok := info.Uses[fun].(*types.Func); ok && callee.Pkg() == nil {
			return false
		}
	case *ast.SelectorExpr:
		if obj, ok := info.Uses[fun.Sel].(*types.Func); ok && obj.Pkg() != nil && obj.Pkg().Path() == "sort" {
			return false
		}
	}
	return true
}
