package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point operands in non-test
// code: cost-model outputs are sums of many rounded terms, so exact
// equality is load-bearing fragility. Use the epsilon helpers in
// repro/internal/core/floats instead. Two idioms stay legal: comparison
// against an exact constant zero (the codebase's "unset field" sentinel)
// and self-comparison (`x != x` NaN probe), plus comparison against
// math.Inf which is exact by construction.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "forbid ==/!= on float operands (use internal/core/floats epsilon helpers); zero-sentinel and NaN-probe idioms allowed",
	Run:  runFloatEq,
}

func isFloat(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isExactFloatOperand reports operands whose comparison is exact: the
// constant 0 sentinel, any compile-time constant ±Inf, or a math.Inf call.
func isExactFloatOperand(info *types.Info, e ast.Expr) bool {
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		if constant.Sign(tv.Value) == 0 {
			return true
		}
	}
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		if name, ok := isPkgFunc(info, call.Fun, "math"); ok && (name == "Inf" || name == "NaN") {
			return true
		}
	}
	return false
}

func runFloatEq(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(p.Info, be.X) || !isFloat(p.Info, be.Y) {
				return true
			}
			if isExactFloatOperand(p.Info, be.X) || isExactFloatOperand(p.Info, be.Y) {
				return true
			}
			if sameExpr(be.X, be.Y) {
				return true // x != x NaN probe
			}
			p.Reportf(be.OpPos, "float %s comparison is not robust; use floats.AlmostEqual / floats.EqTol (repro/internal/core/floats)", be.Op)
			return true
		})
	}
}

// sameExpr reports whether two expressions are syntactically identical
// simple chains (idents/selectors), enough for the NaN self-compare idiom.
func sameExpr(a, b ast.Expr) bool {
	switch a := ast.Unparen(a).(type) {
	case *ast.Ident:
		bi, ok := ast.Unparen(b).(*ast.Ident)
		return ok && a.Name == bi.Name
	case *ast.SelectorExpr:
		bs, ok := ast.Unparen(b).(*ast.SelectorExpr)
		return ok && a.Sel.Name == bs.Sel.Name && sameExpr(a.X, bs.X)
	}
	return false
}
