package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// RegistrySplit enforces the two-registry observability split from
// DESIGN.md §11: sim metric families (byte-diffed across runs) must be
// registered on the sim registry, ctrl families (wall-clock-dependent)
// on the ctrl registry. The manifest's `metric` globs say which family
// belongs where; the receiver's naming convention (Obs / *sim* vs
// *ctrl*) says which registry a call lands on. Receivers with a neutral
// name stay unknown and are skipped — missing a mix-up is acceptable,
// crying wolf on every helper parameter is not. Wrapper helpers that
// forward a string parameter as the family name (ctrlInc style) are
// checked at their call sites via the inspector's RegForwards summary.
var RegistrySplit = &Analyzer{
	Name: "registrysplit",
	Doc:  "metric families must register on the registry their manifest role dictates (sim byte-diffed vs ctrl wall-clock)",
	Run:  runRegistrySplit,
}

func runRegistrySplit(p *Pass) {
	in := p.Inspector()
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			// Direct registry-method calls with a role-identifiable receiver.
			if fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && registryMethods[fun.Sel.Name] {
				if tv, ok := p.Info.Types[fun.X]; ok && isObsRegistry(tv.Type) {
					checkMetricName(p, call.Args[0], RegistryExprRole(fun.X))
					return true
				}
			}
			// Wrapper call sites: the callee forwards a parameter as the name.
			if callee := calleeFunc(p.Info, call); callee != nil {
				if fi := in.FuncByObj(callee); fi != nil {
					for _, fw := range fi.RegForwards {
						if fw.ParamIndex < len(call.Args) {
							checkMetricName(p, call.Args[fw.ParamIndex], fw.Role)
						}
					}
				}
			}
			return true
		})
	}
}

// calleeFunc statically resolves a call's target function, or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// checkMetricName compares a constant family name against the manifest's
// verdict for the registry role it lands on. Non-constant names are
// skipped: a dynamic name cannot be classified at compile time.
func checkMetricName(p *Pass, nameArg ast.Expr, got Role) {
	if got == RoleUnknown {
		return
	}
	tv, ok := p.Info.Types[nameArg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	name := constant.StringVal(tv.Value)
	want := p.Facts.Manifest.MetricRole(name)
	if want == RoleUnknown || want == got {
		return
	}
	p.Reportf(nameArg.Pos(), "metric %q is a %s family per simctrl.manifest but is registered on the %s registry; %s metrics are %s", name, want, got, want, metricRoleNote(want))
}

func metricRoleNote(r Role) string {
	if r == RoleSim {
		return "byte-diffed across runs and must stay on the deterministic registry"
	}
	return "wall-clock-dependent and must stay off the byte-diffed registry"
}
