package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop flags silently discarded errors from I/O-shaped calls in the
// packages where a dropped error masks real faults: internal/dist (wire
// frames, deadlines, connection teardown) and internal/obs (artifact
// writers whose output is byte-diffed — a short write must not pass
// silently). Only a curated set of method names is checked; the general
// "every error must be handled" rule belongs to vet/errcheck, not here.
// A deliberate drop is written `_ = c.Close() //llmpq:allow(errdrop): <why>`.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "I/O errors from writes, closes, deadlines, and frame sends must not be silently discarded in dist/obs",
	Run:  runErrDrop,
}

// errDropMethods are the method names whose error result is load-bearing.
var errDropMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true,
	"Close": true, "Flush": true, "Sync": true,
	"SetDeadline": true, "SetReadDeadline": true, "SetWriteDeadline": true,
	"send": true,
}

// errDropFuncs are package-level functions treated the same way.
var errDropFuncs = map[string]bool{"writeFrame": true}

func errDropScope(pkgPath string) bool {
	return strings.Contains(pkgPath, "internal/dist") || strings.Contains(pkgPath, "internal/obs")
}

func runErrDrop(p *Pass) {
	if !errDropScope(p.Pkg.Path()) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				reportIfDroppedErr(p, n.X, "result discarded")
			case *ast.GoStmt:
				reportIfDroppedErr(p, n.Call, "result discarded by go statement")
			case *ast.DeferStmt:
				reportIfDroppedErr(p, n.Call, "result discarded by defer")
			case *ast.AssignStmt:
				checkAssignDrop(p, n)
			}
			return true
		})
	}
}

// checkAssignDrop handles `_ = call()` and `a, _ := call()` where the
// blank lands on the error result.
func checkAssignDrop(p *Pass, n *ast.AssignStmt) {
	if len(n.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	name, ok := errDropTarget(p.Info, call)
	if !ok {
		return
	}
	// Which result positions are errors, and are they all blank?
	tv, ok := p.Info.Types[call]
	if !ok {
		return
	}
	errIdx := -1
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				errIdx = i
			}
		}
	default:
		if isErrorType(tv.Type) {
			errIdx = 0
		}
	}
	if errIdx < 0 || errIdx >= len(n.Lhs) {
		return
	}
	if id, ok := ast.Unparen(n.Lhs[errIdx]).(*ast.Ident); ok && id.Name == "_" {
		p.Reportf(n.Pos(), "error from %s assigned to blank; handle it or justify with //llmpq:allow(errdrop): <reason>", name)
	}
}

// reportIfDroppedErr reports a bare call expression whose error result
// vanishes.
func reportIfDroppedErr(p *Pass, e ast.Expr, how string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	name, ok := errDropTarget(p.Info, call)
	if !ok {
		return
	}
	if !callReturnsError(p.Info, call) {
		return
	}
	p.Reportf(call.Pos(), "error from %s %s; handle it or justify with //llmpq:allow(errdrop): <reason>", name, how)
}

// errDropTarget reports whether the call hits one of the curated
// error-bearing targets, returning a display name. In-memory builders
// (strings.Builder, bytes.Buffer) are exempt: their writers are
// documented never to fail, so a dropped nil is not a dropped error.
func errDropTarget(info *types.Info, call *ast.CallExpr) (string, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if errDropMethods[fun.Sel.Name] && !infallibleWriter(info, fun.X) {
			return fun.Sel.Name, true
		}
	case *ast.Ident:
		if errDropFuncs[fun.Name] && info.Uses[fun] != nil {
			return fun.Name, true
		}
	}
	return "", false
}

// infallibleWriter reports whether the receiver is a strings.Builder or
// bytes.Buffer (possibly behind a pointer) — writers that never return a
// non-nil error.
func infallibleWriter(info *types.Info, recv ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(recv)]
	if !ok {
		if id, isIdent := ast.Unparen(recv).(*ast.Ident); isIdent {
			if obj := info.Uses[id]; obj != nil {
				return isBuilderType(obj.Type())
			}
		}
		return false
	}
	return isBuilderType(tv.Type)
}

func isBuilderType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() + "." + obj.Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

func callReturnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len() > 0 && isErrorType(t.At(t.Len()-1).Type())
	default:
		return isErrorType(tv.Type)
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "error" && obj.Pkg() == nil
}
