package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// SeededRand keeps plans reproducible: the paper's planner must emit
// bit-for-bit identical strategies for identical inputs, so non-test code
// may only draw randomness from an explicitly seeded *rand.Rand. The
// analyzer forbids (a) math/rand (and v2) package-level functions, which
// use the globally shared, nondeterministically seeded source, and (b)
// seeding a source from wall-clock time or crypto/rand.
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc:  "forbid math/rand top-level functions and time/crypto-seeded sources in non-test code",
	Run:  runSeededRand,
}

// randConstructors are the package-level math/rand functions that are fine
// to call (they build explicit sources); everything else package-level
// draws from the shared global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func isPkgFunc(info *types.Info, e ast.Expr, pkgPath string) (string, bool) {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", false
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return "", false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return "", false
	}
	return fn.Name(), true
}

func runSeededRand(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, randPkg := range []string{"math/rand", "math/rand/v2"} {
				name, ok := isPkgFunc(p.Info, call.Fun, randPkg)
				if !ok {
					continue
				}
				if !randConstructors[name] {
					p.Reportf(call.Pos(), "rand.%s uses the shared global source; plans must be reproducible — use a seeded rand.New(rand.NewSource(seed))", name)
					return true
				}
				// Constructor: the seed expression must be deterministic.
				for _, arg := range call.Args {
					if culprit := nondeterministicSeed(p.Info, arg); culprit != "" {
						p.Reportf(arg.Pos(), "rand.%s seeded from %s is nondeterministic; derive the seed from the request/spec instead", name, culprit)
					}
				}
			}
			return true
		})
	}
}

// nondeterministicSeed scans a seed expression for wall-clock or crypto
// entropy and names the culprit, or returns "".
func nondeterministicSeed(info *types.Info, e ast.Expr) string {
	var culprit string
	ast.Inspect(e, func(n ast.Node) bool {
		if culprit != "" {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := info.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		switch {
		case obj.Pkg().Path() == "time" && (obj.Name() == "Now" || obj.Name() == "Since"):
			culprit = "time." + obj.Name()
		case obj.Pkg().Path() == "crypto/rand":
			culprit = "crypto/rand." + obj.Name()
		case obj.Pkg().Path() == "os" && strings.HasPrefix(obj.Name(), "Getpid"):
			culprit = "os." + obj.Name()
		}
		return true
	})
	return culprit
}
