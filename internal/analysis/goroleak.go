package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// GoroLeak extends the join discipline CtxLock enforces on pipeline
// closures to every `go` statement in the concurrency-heavy packages
// (internal/dist and internal/runtime): a spawned goroutine must be
// joinable — its body (or, for named callees, the callee's body up to a
// small transitive depth) must touch a channel, a context, or a
// WaitGroup, or the goroutine must receive one as an argument.
// A goroutine with no join signal outlives its owner silently: dist
// workers leak connections on reconnect, engine runs leak workers into
// the next test. Precision note: we only prove the *capability* to
// join exists, not that callers use it — that keeps the check cheap
// and the false-positive rate near zero.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "spawned goroutines must be joinable: body or callee must use a channel/context/WaitGroup, or receive one as an argument",
	Run:  runGoroLeak,
}

func goroLeakScope(pkgPath string) bool {
	return strings.Contains(pkgPath, "internal/dist") || strings.Contains(pkgPath, "internal/runtime")
}

func runGoroLeak(p *Pass) {
	if !goroLeakScope(p.Pkg.Path()) {
		return
	}
	in := p.Inspector()
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if goJoinable(p, in, g) {
				return true
			}
			p.Reportf(g.Pos(), "goroutine has no join signal (no channel, context, or WaitGroup in body, callee, or arguments); it cannot be awaited or cancelled")
			return true
		})
	}
}

func goJoinable(p *Pass, in *Inspector, g *ast.GoStmt) bool {
	call := g.Call
	// Function literal: inspect the body directly (bodyHasJoin also
	// accepts ctx.Done()/ctx.Err() via the context check in exprHasJoinArg).
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		if bodyHasJoin(p.Info, lit.Body) {
			return true
		}
	}
	// Named or method callee: consult the summary, then its callees.
	if callee := calleeFunc(p.Info, call); callee != nil {
		if funcJoins(in, callee, 0) {
			return true
		}
	}
	// Any argument (or the method receiver) of a joinable kind makes the
	// goroutine awaitable by construction.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if exprHasJoinType(p.Info, sel.X) {
			return true
		}
	}
	for _, a := range call.Args {
		if exprHasJoinType(p.Info, a) {
			return true
		}
	}
	return false
}

// funcJoins reports whether fn (or a callee, up to depth 3 within the
// package) carries a join signal per its summary. Out-of-package callees
// are conservatively assumed joinable only for the well-known blocking
// stdlib entry points that wrap channel traffic.
func funcJoins(in *Inspector, fn *types.Func, depth int) bool {
	if depth > 3 {
		return false
	}
	fi := in.FuncByObj(fn)
	if fi == nil {
		// Out of package. Signature-level check: a context / channel /
		// WaitGroup parameter means the callee can be joined through it.
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return false
		}
		params := sig.Params()
		for i := 0; i < params.Len(); i++ {
			if typeIsJoinable(params.At(i).Type()) {
				return true
			}
		}
		if recv := sig.Recv(); recv != nil && typeIsJoinable(recv.Type()) {
			return true
		}
		return false
	}
	if fi.JoinSignal {
		return true
	}
	for _, callee := range fi.Calls {
		if callee == fn {
			continue
		}
		if funcJoins(in, callee, depth+1) {
			return true
		}
	}
	return false
}

// exprHasJoinType reports whether an expression's type makes a goroutine
// joinable when passed in: a channel, context.Context, *sync.WaitGroup,
// or a struct that (transitively, one level) holds one.
func exprHasJoinType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	return typeIsJoinable(tv.Type)
}

func typeIsJoinable(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	switch u := t.Underlying().(type) {
	case *types.Chan:
		return true
	case *types.Interface:
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
				return true
			}
		}
	case *types.Struct:
		if lockKind(t) == "sync.WaitGroup" {
			return true
		}
		// One level of struct fields: a worker struct holding a done
		// channel or WaitGroup is joinable through it.
		for i := 0; i < u.NumFields(); i++ {
			ft := u.Field(i).Type()
			if fptr, ok := ft.Underlying().(*types.Pointer); ok {
				ft = fptr.Elem()
			}
			if _, isChan := ft.Underlying().(*types.Chan); isChan {
				return true
			}
			if lockKind(ft) == "sync.WaitGroup" {
				return true
			}
			if named, ok := ft.(*types.Named); ok {
				obj := named.Obj()
				if obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
					return true
				}
			}
		}
	}
	return false
}
