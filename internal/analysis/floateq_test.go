package analysis

import "testing"

func TestFloatEq(t *testing.T) {
	runFixture(t, FloatEq, "floateq", "repro/internal/fixture")
}
