package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CtxLock polices the concurrency discipline of the pipeline engine:
//
//  1. no sync primitive (Mutex, RWMutex, WaitGroup, Once, Cond) is ever
//     copied by value — parameters, value receivers, and plain assignments;
//  2. inside internal/runtime and internal/online, every `go` statement
//     must have a join: the goroutine body references a WaitGroup or
//     performs channel communication (send/receive/close/range);
//  3. inside internal/runtime and internal/online, time.Sleep is banned
//     from hot paths — the simulated clock (internal/simclock) or channel
//     coordination is the only legal way to wait.
var CtxLock = &Analyzer{
	Name: "ctxlock",
	Doc:  "no sync-primitive copies; goroutines in runtime/online need a WaitGroup/channel join; no time.Sleep in pipeline hot paths",
	Run:  runCtxLock,
}

// pipelinePackage reports whether path is one of the hot-path packages the
// goroutine-join and Sleep rules apply to.
func pipelinePackage(path string) bool {
	return strings.Contains(path, "internal/runtime") || strings.Contains(path, "internal/online")
}

// lockKind names the sync primitive embedded in t, or "".
func lockKind(t types.Type) string {
	return lockKindSeen(t, map[types.Type]bool{})
}

func lockKindSeen(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond":
				return "sync." + obj.Name()
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if k := lockKindSeen(u.Field(i).Type(), seen); k != "" {
				return k
			}
		}
	case *types.Array:
		return lockKindSeen(u.Elem(), seen)
	}
	return ""
}

func runCtxLock(p *Pass) {
	hotPath := pipelinePackage(p.Pkg.Path())
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				p.checkLockSignature(n.Type, n.Recv)
			case *ast.FuncLit:
				p.checkLockSignature(n.Type, nil)
			case *ast.AssignStmt:
				p.checkLockCopy(n)
			case *ast.GoStmt:
				if hotPath {
					p.checkGoJoin(n)
				}
			case *ast.CallExpr:
				if hotPath {
					if name, ok := isPkgFunc(p.Info, n.Fun, "time"); ok && name == "Sleep" {
						p.Reportf(n.Pos(), "time.Sleep in a pipeline hot path; use internal/simclock or channel coordination")
					}
				}
			}
			return true
		})
	}
}

// checkLockSignature flags by-value sync primitives in params, results,
// and receivers.
func (p *Pass) checkLockSignature(ft *ast.FuncType, recv *ast.FieldList) {
	flag := func(fl *ast.FieldList, role string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			tv, ok := p.Info.Types[field.Type]
			if !ok {
				continue
			}
			if _, isPtr := tv.Type.(*types.Pointer); isPtr {
				continue
			}
			if k := lockKind(tv.Type); k != "" {
				p.Reportf(field.Type.Pos(), "%s passes %s by value; pass a pointer so the lock state is shared", role, k)
			}
		}
	}
	flag(recv, "receiver")
	flag(ft.Params, "parameter")
	flag(ft.Results, "result")
}

// checkLockCopy flags `a = b` / `a := b` where b is an existing value
// containing a sync primitive (composite literals and zero values are
// fine: they create a fresh, unused lock).
func (p *Pass) checkLockCopy(as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) {
			break
		}
		switch ast.Unparen(rhs).(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		default:
			continue // fresh value (literal, call, &x, ...)
		}
		tv, ok := p.Info.Types[rhs]
		if !ok {
			continue
		}
		if _, isPtr := tv.Type.(*types.Pointer); isPtr {
			continue
		}
		if k := lockKind(tv.Type); k != "" {
			p.Reportf(rhs.Pos(), "assignment copies %s; share it through a pointer instead", k)
		}
	}
}

// checkGoJoin requires every goroutine in a pipeline package to be
// joinable: its body (for func literals) or its enclosing usage must touch
// a WaitGroup or a channel.
func (p *Pass) checkGoJoin(g *ast.GoStmt) {
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		if bodyHasJoin(p.Info, lit.Body) {
			return
		}
		p.Reportf(g.Pos(), "goroutine has no join: body touches no WaitGroup and no channel; it can outlive the pipeline")
		return
	}
	// Named function launched directly: require at least a channel or
	// WaitGroup among the call's arguments.
	for _, arg := range g.Call.Args {
		if tv, ok := p.Info.Types[arg]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				return
			}
			t := tv.Type
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if lockKind(t) == "sync.WaitGroup" {
				return
			}
		}
	}
	p.Reportf(g.Pos(), "goroutine call passes no channel or WaitGroup; the pipeline cannot join it")
}

// bodyHasJoin reports whether a goroutine body communicates: WaitGroup
// method call, channel send/close, channel receive, or range over a
// channel.
func bodyHasJoin(info *types.Info, body *ast.BlockStmt) bool {
	joined := false
	ast.Inspect(body, func(n ast.Node) bool {
		if joined {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			joined = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				joined = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					joined = true
				}
			}
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "close" {
					joined = true
				}
			case *ast.SelectorExpr:
				if sel, ok := info.Selections[fun]; ok {
					recv := sel.Recv()
					if ptr, ok := recv.(*types.Pointer); ok {
						recv = ptr.Elem()
					}
					if lockKind(recv) == "sync.WaitGroup" {
						joined = true
					}
				}
			}
		}
		return true
	})
	return joined
}
