package analysis

import (
	"go/ast"
	"strings"
)

// SimWallClock enforces the sim/ctrl time contract (simctrl.manifest):
// packages on the deterministic sim path — listed `sim` or transitively
// imported by one — must never read the wall clock or block on real
// timers, because plans, schedules, and artifacts must be byte-for-bit
// reproducible. The only blessed wall-clock routes are internal/simclock
// (the virtual clock itself) and core/retry.WallSleep (the injected
// real-time sleep real-time callers opt into). A sim package importing a
// package the manifest marks ctrl is reported at the import.
var SimWallClock = &Analyzer{
	Name: "simwallclock",
	Doc:  "no wall-clock reads or real timers in sim-deterministic packages; route through internal/simclock or core/retry.WallSleep",
	Run:  runSimWallClock,
}

// wallClockFuncs are the time-package entry points that observe or wait
// on the wall clock. time.Duration arithmetic and construction stay
// legal — only reading `now` or blocking on a real timer is the hazard.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "Tick": true,
	"NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

// wallClockExempt reports the blessed wrappers: the simclock package
// itself, and the WallSleep escape hatch in core/retry.
func wallClockExempt(pkgPath, funcName string) bool {
	if strings.Contains(pkgPath, "internal/simclock") {
		return true
	}
	return strings.Contains(pkgPath, "core/retry") && funcName == "WallSleep"
}

func runSimWallClock(p *Pass) {
	path := p.Pkg.Path()
	if p.Facts.Role(path) != RoleSim {
		return
	}
	if strings.Contains(path, "internal/simclock") {
		return
	}
	why := "listed sim in simctrl.manifest"
	if via := p.Facts.SimVia(path); via != "" {
		why = "imported by sim package " + via
	}

	// A sim package importing an explicit-ctrl package is a contract
	// violation regardless of what it calls.
	ctrlDeps := map[string]bool{}
	for _, dep := range p.Facts.CtrlImports(path) {
		ctrlDeps[dep] = true
	}

	insp := p.Inspector()
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			dep := strings.Trim(imp.Path.Value, `"`)
			if ctrlDeps[dep] {
				p.Reportf(imp.Pos(), "sim-deterministic package (%s) imports ctrl-only package %s; the sim path must not depend on wall-clock code", why, dep)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := isPkgFunc(p.Info, call.Fun, "time")
			if !ok || !wallClockFuncs[name] {
				return true
			}
			if fi := insp.EnclosingFunc(call.Pos()); fi != nil && fi.Decl.Name != nil &&
				wallClockExempt(path, fi.Decl.Name.Name) {
				return true
			}
			p.Reportf(call.Pos(), "time.%s in sim-deterministic package (%s); use internal/simclock or core/retry.WallSleep, or justify with //llmpq:allow(simwallclock): <reason>", name, why)
			return true
		})
	}
}
