// Package analysis is LLM-PQ's domain-aware static-analysis suite: a small
// go/ast + go/types framework (stdlib only, mirroring the shape of
// golang.org/x/tools/go/analysis without the dependency) plus the analyzers
// that guard the planner's invariants — bitwidths stay in the paper's
// {3,4,8,16} set, cost-model arithmetic never mixes units, plans stay
// deterministic, float comparisons go through epsilon helpers, and the
// pipeline runtime's concurrency follows the join discipline DESIGN.md
// documents. The cmd/llmpq-vet driver runs every analyzer over the module.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding, pinned to a source position.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Facts is the cross-package sim/ctrl view (never nil inside Run: the
	// runner defaults it to manifest-only facts).
	Facts *Facts

	pkg   *Package
	diags *[]Diagnostic
}

// Inspector returns the package's shared inspector (parent links,
// per-function summaries, lazy CFG/escape info), built once and reused
// by every analyzer on the package.
func (p *Pass) Inspector() *Inspector { return p.pkg.Inspector() }

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		BitwidthSet, UnitMix, SeededRand, FloatEq, CtxLock,
		SimWallClock, MapIter, RegistrySplit, GoroLeak, ErrDrop,
	}
}

// ByName resolves an analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// IgnoreDirective is the comment that suppresses a finding on its own line
// or the line directly below: //llmpq:ignore <analyzer>[,<analyzer>...]
// (or bare //llmpq:ignore to suppress every analyzer).
const IgnoreDirective = "llmpq:ignore"

// ignoreSet maps file → line → analyzer names suppressed there ("" = all).
type ignoreSet map[string]map[int]map[string]bool

func collectIgnores(fset *token.FileSet, files []*ast.File) ignoreSet {
	ig := ignoreSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, IgnoreDirective) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, IgnoreDirective))
				// Only the first whitespace-delimited token is the analyzer
				// list; anything after it is the human justification.
				if fields := strings.Fields(rest); len(fields) > 0 {
					rest = fields[0]
				}
				pos := fset.Position(c.Pos())
				m := ig[pos.Filename]
				if m == nil {
					m = map[int]map[string]bool{}
					ig[pos.Filename] = m
				}
				names := map[string]bool{}
				if rest == "" {
					names[""] = true
				} else {
					for _, n := range strings.Split(rest, ",") {
						names[strings.TrimSpace(n)] = true
					}
				}
				// The directive covers its own line (trailing comment) and
				// the next line (comment-above style).
				for _, line := range []int{pos.Line, pos.Line + 1} {
					if m[line] == nil {
						m[line] = map[string]bool{}
					}
					for n := range names {
						m[line][n] = true
					}
				}
			}
		}
	}
	return ig
}

func (ig ignoreSet) suppressed(d Diagnostic) bool {
	m, ok := ig[d.File]
	if !ok {
		return false
	}
	names, ok := m[d.Line]
	if !ok {
		return false
	}
	return names[""] || names[d.Analyzer]
}

// AllowDirective is the justified, per-analyzer suppression:
// //llmpq:allow(<analyzer>): <reason>. Unlike llmpq:ignore it names
// exactly one analyzer, the reason is mandatory, and a directive that
// suppresses nothing is itself a finding — stale allowances rot the
// contract, so they fail the build.
const AllowDirective = "llmpq:allow"

// allowMetaName is the pseudo-analyzer findings about the directives
// themselves are filed under (always on; not part of Analyzers()).
const allowMetaName = "allow"

// Anchored to the start of the comment so that prose mentioning the
// directive (doc comments, fixture want-strings) is not itself parsed
// as a directive.
var allowRE = regexp.MustCompile(`^//\s*llmpq:allow\(([a-z]+)\)(:?)\s*(.*)`)

// allowEntry is one parsed allow directive.
type allowEntry struct {
	analyzer string
	reason   string
	pos      token.Position
	lines    [2]int // the directive's own line and the line below
	used     bool
	enabled  bool // suppresses only analyzers that actually ran
}

func collectAllows(fset *token.FileSet, files []*ast.File, ran map[string]bool) []*allowEntry {
	var out []*allowEntry
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				// The reason only counts when introduced by the colon;
				// `//llmpq:allow(x) stray text` is still reason-less.
				reason := ""
				if m[2] == ":" {
					reason = strings.TrimSpace(m[3])
				}
				out = append(out, &allowEntry{
					analyzer: m[1],
					reason:   reason,
					pos:      pos,
					lines:    [2]int{pos.Line, pos.Line + 1},
					enabled:  ran[m[1]],
				})
			}
		}
	}
	return out
}

// applyAllows suppresses matching diagnostics, then reports directive
// problems: a missing reason, an unknown analyzer name, and — for
// analyzers that ran — a directive that suppressed nothing.
func applyAllows(allows []*allowEntry, diags []Diagnostic, ran map[string]bool) []Diagnostic {
	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, a := range allows {
			if a.analyzer == d.Analyzer && a.pos.Filename == d.File &&
				(a.lines[0] == d.Line || a.lines[1] == d.Line) && a.reason != "" {
				a.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, a := range allows {
		switch {
		case ByName(a.analyzer) == nil:
			kept = append(kept, Diagnostic{
				Analyzer: allowMetaName, File: a.pos.Filename, Line: a.pos.Line, Col: a.pos.Column,
				Message: fmt.Sprintf("llmpq:allow(%s) names no known analyzer", a.analyzer),
			})
		case a.reason == "":
			kept = append(kept, Diagnostic{
				Analyzer: allowMetaName, File: a.pos.Filename, Line: a.pos.Line, Col: a.pos.Column,
				Message: fmt.Sprintf("llmpq:allow(%s) needs a justification: `//llmpq:allow(%s): <reason>`", a.analyzer, a.analyzer),
			})
		case !a.used && a.enabled:
			kept = append(kept, Diagnostic{
				Analyzer: allowMetaName, File: a.pos.Filename, Line: a.pos.Line, Col: a.pos.Column,
				Message: fmt.Sprintf("unused llmpq:allow(%s) directive: the analyzer reports nothing here — remove it", a.analyzer),
			})
		}
	}
	return kept
}

// RunPackage runs the given analyzers over one loaded package with
// manifest-only facts — what fixture tests and single-package callers
// use. See RunPackageFacts for the whole-module entry point.
func RunPackage(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	return RunPackageFacts(pkg, analyzers, nil)
}

// RunPackageFacts runs the analyzers over one loaded package under the
// given cross-package facts (nil = manifest-only) and returns the
// surviving diagnostics — ignore and allow directives applied, directive
// misuse reported — sorted by position.
func RunPackageFacts(pkg *Package, analyzers []*Analyzer, facts *Facts) []Diagnostic {
	if facts == nil {
		facts = ManifestFacts(nil)
	}
	var diags []Diagnostic
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Facts:    facts,
			pkg:      pkg,
			diags:    &diags,
		}
		a.Run(pass)
	}
	ig := collectIgnores(pkg.Fset, pkg.Files)
	kept := diags[:0]
	for _, d := range diags {
		if !ig.suppressed(d) {
			kept = append(kept, d)
		}
	}
	kept = applyAllows(collectAllows(pkg.Fset, pkg.Files, ran), kept, ran)
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].File != kept[j].File {
			return kept[i].File < kept[j].File
		}
		if kept[i].Line != kept[j].Line {
			return kept[i].Line < kept[j].Line
		}
		if kept[i].Col != kept[j].Col {
			return kept[i].Col < kept[j].Col
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept
}
