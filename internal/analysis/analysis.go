// Package analysis is LLM-PQ's domain-aware static-analysis suite: a small
// go/ast + go/types framework (stdlib only, mirroring the shape of
// golang.org/x/tools/go/analysis without the dependency) plus the analyzers
// that guard the planner's invariants — bitwidths stay in the paper's
// {3,4,8,16} set, cost-model arithmetic never mixes units, plans stay
// deterministic, float comparisons go through epsilon helpers, and the
// pipeline runtime's concurrency follows the join discipline DESIGN.md
// documents. The cmd/llmpq-vet driver runs every analyzer over the module.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, pinned to a source position.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{BitwidthSet, UnitMix, SeededRand, FloatEq, CtxLock}
}

// ByName resolves an analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// IgnoreDirective is the comment that suppresses a finding on its own line
// or the line directly below: //llmpq:ignore <analyzer>[,<analyzer>...]
// (or bare //llmpq:ignore to suppress every analyzer).
const IgnoreDirective = "llmpq:ignore"

// ignoreSet maps file → line → analyzer names suppressed there ("" = all).
type ignoreSet map[string]map[int]map[string]bool

func collectIgnores(fset *token.FileSet, files []*ast.File) ignoreSet {
	ig := ignoreSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, IgnoreDirective) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, IgnoreDirective))
				// Only the first whitespace-delimited token is the analyzer
				// list; anything after it is the human justification.
				if fields := strings.Fields(rest); len(fields) > 0 {
					rest = fields[0]
				}
				pos := fset.Position(c.Pos())
				m := ig[pos.Filename]
				if m == nil {
					m = map[int]map[string]bool{}
					ig[pos.Filename] = m
				}
				names := map[string]bool{}
				if rest == "" {
					names[""] = true
				} else {
					for _, n := range strings.Split(rest, ",") {
						names[strings.TrimSpace(n)] = true
					}
				}
				// The directive covers its own line (trailing comment) and
				// the next line (comment-above style).
				for _, line := range []int{pos.Line, pos.Line + 1} {
					if m[line] == nil {
						m[line] = map[string]bool{}
					}
					for n := range names {
						m[line][n] = true
					}
				}
			}
		}
	}
	return ig
}

func (ig ignoreSet) suppressed(d Diagnostic) bool {
	m, ok := ig[d.File]
	if !ok {
		return false
	}
	names, ok := m[d.Line]
	if !ok {
		return false
	}
	return names[""] || names[d.Analyzer]
}

// RunPackage runs the given analyzers over one loaded package and returns
// the surviving diagnostics (suppression directives applied), sorted by
// position.
func RunPackage(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		a.Run(pass)
	}
	ig := collectIgnores(pkg.Fset, pkg.Files)
	kept := diags[:0]
	for _, d := range diags {
		if !ig.suppressed(d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].File != kept[j].File {
			return kept[i].File < kept[j].File
		}
		if kept[i].Line != kept[j].Line {
			return kept[i].Line < kept[j].Line
		}
		if kept[i].Col != kept[j].Col {
			return kept[i].Col < kept[j].Col
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept
}
