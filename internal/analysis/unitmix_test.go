package analysis

import "testing"

func TestUnitMix(t *testing.T) {
	runFixture(t, UnitMix, "unitmix", "repro/internal/fixture")
}

func TestUnitOfName(t *testing.T) {
	cases := map[string]string{
		"LatencySec":      "sec",
		"PrefillMB":       "MB",
		"shardBytes":      "bytes",
		"memGiB":          "GiB",
		"StageMemGB":      "GB",
		"decodeMs":        "ms",
		"TotalTokens":     "tokens",
		"TokPerSec":       "per-sec",
		"tokensPerSec":    "per-sec",
		"RecoverySeconds": "sec",
		"Describe":        "",
		"plan":            "",
		"Ms":              "", // a bare suffix is not a measurement name
	}
	for name, want := range cases {
		if got := unitOfName(name); got != want {
			t.Errorf("unitOfName(%q) = %q, want %q", name, got, want)
		}
	}
}
