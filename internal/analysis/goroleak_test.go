package analysis

import "testing"

func TestGoroLeak(t *testing.T) {
	runFixture(t, GoroLeak, "goroleak", "repro/internal/dist/fixture")
}

func TestGoroLeakOutOfScope(t *testing.T) {
	pkg := loadFixture(t, "goroleak", "repro/internal/assigner/fixture")
	if diags := RunPackage(pkg, []*Analyzer{GoroLeak}); len(diags) != 0 {
		t.Fatalf("goroleak only covers dist and runtime, got %v", diags)
	}
}
