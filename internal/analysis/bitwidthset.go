package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// BitwidthSet flags integer constants flowing into bitwidth-named
// parameters, struct fields, or variables when they fall outside the
// paper's supported set {3,4,8,16} (§4: the adaptive-quantization search
// space). 0 is accepted everywhere as the "unset / default FP16" sentinel,
// and 2 is additionally accepted for KV-cache precisions (INT2 KV is a §7
// extension candidate).
var BitwidthSet = &Analyzer{
	Name: "bitwidthset",
	Doc:  "integer constants assigned to bitwidth-typed parameters/fields must stay in {3,4,8,16} (0 sentinel; 2 for KV)",
	Run:  runBitwidthSet,
}

// isBitwidthName reports whether an identifier denotes a bitwidth. The
// "bit" substring catches Bits, KVBits, LayerBits, bitwidth, wbits...
func isBitwidthName(name string) bool {
	return strings.Contains(strings.ToLower(name), "bit")
}

func isKVName(name string) bool {
	return strings.Contains(strings.ToLower(name), "kv")
}

func allowedBitwidth(v int64, kv bool) bool {
	switch v {
	case 0, 3, 4, 8, 16:
		return true
	case 2:
		return kv
	}
	return false
}

func runBitwidthSet(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				p.checkBitwidthCall(n)
			case *ast.CompositeLit:
				p.checkBitwidthComposite(n)
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break // multi-value RHS: nothing constant to check
					}
					if name, ok := bitwidthTarget(lhs); ok {
						p.checkBitwidthValue(n.Rhs[i], name)
					}
				}
			case *ast.ValueSpec:
				for i, id := range n.Names {
					if isBitwidthName(id.Name) && i < len(n.Values) {
						p.checkBitwidthValue(n.Values[i], id.Name)
					}
				}
			}
			return true
		})
	}
}

// bitwidthTarget extracts the identifier name of an assignable bitwidth
// destination (x, s.KVBits, bits[i]).
func bitwidthTarget(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		if isBitwidthName(e.Name) {
			return e.Name, true
		}
	case *ast.SelectorExpr:
		if isBitwidthName(e.Sel.Name) {
			return e.Sel.Name, true
		}
	case *ast.IndexExpr:
		return bitwidthTarget(e.X)
	}
	return "", false
}

// checkBitwidthValue validates a constant (or []int literal) flowing into
// the named bitwidth destination.
func (p *Pass) checkBitwidthValue(e ast.Expr, name string) {
	kv := isKVName(name)
	if lit, ok := ast.Unparen(e).(*ast.CompositeLit); ok {
		for _, el := range lit.Elts {
			if v, ok := constInt(p.Info, el); ok && !allowedBitwidth(v, kv) {
				p.Reportf(el.Pos(), "bitwidth %d in %s outside supported set {3,4,8,16} (paper §4)", v, name)
			}
		}
		return
	}
	if v, ok := constInt(p.Info, e); ok && !allowedBitwidth(v, kv) {
		extra := ""
		if kv {
			extra = " ∪ {2}"
		}
		p.Reportf(e.Pos(), "bitwidth %d assigned to %s outside supported set {3,4,8,16}%s (paper §4)", v, name, extra)
	}
}

func (p *Pass) checkBitwidthCall(call *ast.CallExpr) {
	sig := callSignature(p.Info, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		pi := i
		if pi >= params.Len() {
			if !sig.Variadic() {
				break
			}
			pi = params.Len() - 1
		}
		if pi < 0 {
			break
		}
		param := params.At(pi)
		if !isBitwidthName(param.Name()) {
			continue
		}
		p.checkBitwidthValue(arg, param.Name())
	}
}

func (p *Pass) checkBitwidthComposite(lit *ast.CompositeLit) {
	tv, ok := p.Info.Types[lit]
	if !ok {
		return
	}
	st, ok := tv.Type.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			key, ok := kv.Key.(*ast.Ident)
			if !ok || !isBitwidthName(key.Name) {
				continue
			}
			p.checkBitwidthValue(kv.Value, key.Name)
			continue
		}
		// Positional literal: map index to field.
		if i < st.NumFields() && isBitwidthName(st.Field(i).Name()) {
			p.checkBitwidthValue(el, st.Field(i).Name())
		}
	}
}

// constInt evaluates e to an integer constant if possible.
func constInt(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	if tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// callSignature resolves the *types.Signature of a call's callee, or nil
// for conversions and unresolvable callees.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return nil
	}
	return sig
}
