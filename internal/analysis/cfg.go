package analysis

// A lightweight intra-function control-flow graph. Analyzers use it for
// order-sensitive questions — "can execution get from this map-range to
// that writer call without passing a sort?" — that a flat AST walk cannot
// answer. Precision is deliberately modest: blocks are statement
// sequences, branch/loop/switch/select statements fan out to successor
// blocks, `goto` is treated like a return (it does not occur in this
// codebase). Missing edges can only hide a path (fewer findings), never
// invent one.

import (
	"go/ast"
	"go/token"
)

// Block is one straight-line statement sequence.
type Block struct {
	Index int
	Nodes []ast.Stmt
	Succs []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block // every return/panic-free fall-through edge lands here

	stmtBlock map[ast.Stmt]*Block
	stmtIndex map[ast.Stmt]int // position within its block
}

type cfgBuilder struct {
	g    *CFG
	cur  *Block
	brk  []*Block // break targets, innermost last
	cont []*Block // continue targets, innermost last
}

// BuildCFG constructs the CFG for a function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	g := &CFG{stmtBlock: map[ast.Stmt]*Block{}, stmtIndex: map[ast.Stmt]int{}}
	b := &cfgBuilder{g: g}
	entry := b.newBlock()
	g.Entry = entry
	g.Exit = b.newBlock()
	b.cur = entry
	b.stmts(body.List)
	b.edge(b.cur, g.Exit)
	return g
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

func (b *cfgBuilder) add(s ast.Stmt) {
	b.g.stmtBlock[s] = b.cur
	b.g.stmtIndex[s] = len(b.cur.Nodes)
	b.cur.Nodes = append(b.cur.Nodes, s)
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)
	case *ast.IfStmt:
		b.add(s) // init+cond evaluate in the current block
		condBlk := b.cur
		thenBlk := b.newBlock()
		join := b.newBlock()
		b.edge(condBlk, thenBlk)
		b.cur = thenBlk
		b.stmts(s.Body.List)
		b.edge(b.cur, join)
		if s.Else != nil {
			elseBlk := b.newBlock()
			b.edge(condBlk, elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else)
			b.edge(b.cur, join)
		} else {
			b.edge(condBlk, join)
		}
		b.cur = join
	case *ast.ForStmt:
		b.add(s)
		head := b.newBlock()
		body := b.newBlock()
		exit := b.newBlock()
		b.edge(b.cur, head)
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, exit) // condition may fail immediately
		}
		b.brk = append(b.brk, exit)
		b.cont = append(b.cont, head)
		b.cur = body
		b.stmts(s.Body.List)
		b.edge(b.cur, head)
		b.brk = b.brk[:len(b.brk)-1]
		b.cont = b.cont[:len(b.cont)-1]
		if s.Cond == nil {
			// for {} only exits through break; the edge set above handles it.
			b.edge(head, exit)
		}
		b.cur = exit
	case *ast.RangeStmt:
		b.add(s)
		head := b.newBlock()
		body := b.newBlock()
		exit := b.newBlock()
		b.edge(b.cur, head)
		b.edge(head, body)
		b.edge(head, exit)
		b.brk = append(b.brk, exit)
		b.cont = append(b.cont, head)
		b.cur = body
		b.stmts(s.Body.List)
		b.edge(b.cur, head)
		b.brk = b.brk[:len(b.brk)-1]
		b.cont = b.cont[:len(b.cont)-1]
		b.cur = exit
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		b.add(s)
		head := b.cur
		join := b.newBlock()
		b.brk = append(b.brk, join)
		var clauses []ast.Stmt
		hasDefault := false
		switch s := s.(type) {
		case *ast.SwitchStmt:
			clauses = s.Body.List
		case *ast.TypeSwitchStmt:
			clauses = s.Body.List
		case *ast.SelectStmt:
			clauses = s.Body.List
		}
		for _, c := range clauses {
			blk := b.newBlock()
			b.edge(head, blk)
			b.cur = blk
			switch c := c.(type) {
			case *ast.CaseClause:
				if c.List == nil {
					hasDefault = true
				}
				b.stmts(c.Body)
			case *ast.CommClause:
				if c.Comm == nil {
					hasDefault = true
				} else {
					b.stmt(c.Comm)
				}
				b.stmts(c.Body)
			}
			b.edge(b.cur, join)
		}
		if !hasDefault {
			b.edge(head, join)
		}
		b.brk = b.brk[:len(b.brk)-1]
		b.cur = join
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.cur = b.newBlock() // unreachable continuation
	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			if len(b.brk) > 0 {
				b.edge(b.cur, b.brk[len(b.brk)-1])
			}
		case token.CONTINUE:
			if len(b.cont) > 0 {
				b.edge(b.cur, b.cont[len(b.cont)-1])
			}
		case token.GOTO:
			b.edge(b.cur, b.g.Exit)
		}
		b.cur = b.newBlock()
	case *ast.LabeledStmt:
		b.stmt(s.Stmt)
	default:
		b.add(s)
	}
}

// After returns the block and intra-block index holding stmt, or nil.
func (g *CFG) blockOf(s ast.Stmt) (*Block, int) {
	blk, ok := g.stmtBlock[s]
	if !ok {
		return nil, 0
	}
	return blk, g.stmtIndex[s]
}

// PathAvoiding reports whether control can flow from just after `from`
// to `to` without first executing a statement for which avoid returns
// true. Both must be statements recorded in the graph; unknown
// statements yield false (no claimed path — the conservative answer for
// "must I report?" callers is then decided by the analyzer).
func (g *CFG) PathAvoiding(from, to ast.Stmt, avoid func(ast.Stmt) bool) bool {
	fromBlk, fromIdx := g.blockOf(from)
	toBlk, toIdx := g.blockOf(to)
	if fromBlk == nil || toBlk == nil {
		return false
	}
	// Same block: scan the statements strictly between the two.
	if fromBlk == toBlk && fromIdx < toIdx {
		for i := fromIdx + 1; i < toIdx; i++ {
			if avoid(fromBlk.Nodes[i]) {
				return false
			}
		}
		return true
	}
	// Tail of the from-block must be clean before any successor hop.
	for i := fromIdx + 1; i < len(fromBlk.Nodes); i++ {
		if avoid(fromBlk.Nodes[i]) {
			return false
		}
	}
	seen := map[*Block]bool{fromBlk: true}
	queue := append([]*Block(nil), fromBlk.Succs...)
	for len(queue) > 0 {
		blk := queue[0]
		queue = queue[1:]
		if seen[blk] {
			continue
		}
		seen[blk] = true
		limit := len(blk.Nodes)
		if blk == toBlk {
			limit = toIdx
		}
		clean := true
		for i := 0; i < limit; i++ {
			if avoid(blk.Nodes[i]) {
				clean = false
				break
			}
		}
		if blk == toBlk {
			if clean {
				return true
			}
			continue
		}
		if clean {
			queue = append(queue, blk.Succs...)
		}
	}
	return false
}
