package analysis

// analysistest-style fixture runner: each analyzer is exercised against a
// small package under testdata/src/<name>/, where `// want "substr"`
// comments state the expected diagnostics line by line (several quoted
// substrings = several diagnostics on that line).

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// Fixtures share one fset + one stdlib source importer so sync/time/... are
// type-checked from source once per test binary, not once per fixture.
var fixtureImports = sync.OnceValue(func() (v struct {
	fset *token.FileSet
	imp  types.Importer
	mu   *sync.Mutex
}) {
	v.fset = token.NewFileSet()
	v.imp = importer.ForCompiler(v.fset, "source", nil)
	v.mu = &sync.Mutex{}
	return
})

// loadFixture type-checks testdata/src/<fixture> as package pkgPath.
func loadFixture(t *testing.T, fixture, pkgPath string) *Package {
	t.Helper()
	shared := fixtureImports()
	shared.mu.Lock()
	defer shared.mu.Unlock()
	dir := filepath.Join("testdata", "src", fixture)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture %s: %v", dir, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(shared.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("fixture %s has no Go files", dir)
	}
	info := newInfo()
	conf := types.Config{Importer: shared.imp}
	tpkg, err := conf.Check(pkgPath, shared.fset, files, info)
	if err != nil {
		t.Fatalf("type-check fixture %s: %v", fixture, err)
	}
	return &Package{Path: pkgPath, Dir: dir, Fset: shared.fset, Files: files, Types: tpkg, Info: info}
}

var wantRE = regexp.MustCompile(`//\s*want((?:\s+"(?:[^"\\]|\\.)*")+)`)
var wantStrRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// collectWants maps file:line → expected diagnostic substrings.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]string {
	t.Helper()
	wants := map[string][]string{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, q := range wantStrRE.FindAllString(m[1], -1) {
					s, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("bad want string %s at %s: %v", q, key, err)
					}
					wants[key] = append(wants[key], s)
				}
			}
		}
	}
	return wants
}

// runFixture asserts that the analyzer's diagnostics on the fixture match
// its want comments exactly.
func runFixture(t *testing.T, a *Analyzer, fixture, pkgPath string) {
	t.Helper()
	pkg := loadFixture(t, fixture, pkgPath)
	diags := RunPackage(pkg, []*Analyzer{a})
	wants := collectWants(t, pkg.Fset, pkg.Files)

	matched := map[string][]bool{}
	for k, w := range wants {
		matched[k] = make([]bool, len(w))
	}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.File, d.Line)
		found := false
		for i, w := range wants[key] {
			if !matched[key][i] && strings.Contains(d.Message, w) {
				matched[key][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s: %s", key, d.Message)
		}
	}
	for key, w := range wants {
		for i, ok := range matched[key] {
			if !ok {
				t.Errorf("missing diagnostic at %s: want %q", key, w[i])
			}
		}
	}
}
