package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapIter catches nondeterministic map iteration feeding deterministic
// output. Go randomises map range order, so anything byte-diffed — plan
// artifacts, metric dumps, wire frames — must sort keys before emitting.
// Two shapes are flagged in sim-deterministic packages and internal/dist:
//
//  1. a sink call (Fprintf/Write/Encode/send/writeFrame/...) lexically
//     inside a map-range body, and
//  2. appending to a local slice inside a map-range and later passing
//     that slice to a sink with no sort of the slice on some path
//     between (the CFG answers the "some path" question).
//
// The collect-keys → sort.Strings(keys) → indexed-loop idiom the obs
// exporter uses is exactly what shape 2 is designed to accept.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc:  "map iteration must not feed deterministic output unsorted; collect keys and sort first",
	Run:  runMapIter,
}

// mapIterSinks are the emit entry points whose argument order becomes
// observable bytes.
var mapIterSinks = map[string]bool{
	"Fprintf": true, "Fprintln": true, "Fprint": true,
	"Printf": true, "Println": true, "Print": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "writeFrame": true, "send": true,
}

func mapIterScope(p *Pass) bool {
	if p.Facts.Role(p.Pkg.Path()) == RoleSim {
		return true
	}
	// dist frames cross the wire in both sim-parity and live runs; frame
	// payload order must be stable either way.
	return strings.Contains(p.Pkg.Path(), "internal/dist")
}

// isSinkCall reports a call to one of the emit entry points, returning
// the sink's name.
func isSinkCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if mapIterSinks[fun.Name] && info.Uses[fun] != nil {
			return fun.Name, true
		}
	case *ast.SelectorExpr:
		if mapIterSinks[fun.Sel.Name] {
			return fun.Sel.Name, true
		}
	}
	return "", false
}

// isMapRange reports whether s ranges over a map.
func isMapRange(info *types.Info, s *ast.RangeStmt) bool {
	tv, ok := info.Types[s.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

func runMapIter(p *Pass) {
	if !mapIterScope(p) {
		return
	}
	for _, fi := range p.Inspector().Funcs() {
		if fi.Decl.Body == nil {
			continue
		}
		checkMapIterFunc(p, fi)
	}
}

func checkMapIterFunc(p *Pass, fi *FuncInfo) {
	info := p.Info
	in := p.Inspector()
	// collected maps a local slice object to the map-range append that
	// filled it (shape 2 candidates).
	type fill struct {
		rng *ast.RangeStmt
		app *ast.AssignStmt
	}
	collected := map[types.Object]fill{}

	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || !isMapRange(info, rng) {
			return true
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.CallExpr:
				if name, ok := isSinkCall(info, m); ok {
					p.Reportf(m.Pos(), "%s inside map iteration: range order is random, so emitted bytes are nondeterministic; collect keys, sort, then emit", name)
				}
			case *ast.AssignStmt:
				// xs = append(xs, ...) on a local slice.
				if len(m.Lhs) != 1 || len(m.Rhs) != 1 {
					return true
				}
				lhs, ok := ast.Unparen(m.Lhs[0]).(*ast.Ident)
				if !ok {
					return true
				}
				call, ok := ast.Unparen(m.Rhs[0]).(*ast.CallExpr)
				if !ok {
					return true
				}
				fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok || fun.Name != "append" || !isBuiltinIdent(info, fun) {
					return true
				}
				obj := info.Uses[lhs]
				if obj == nil {
					obj = info.Defs[lhs]
				}
				if obj == nil || sliceLeaves(info, fi.Decl, obj) {
					return true
				}
				if _, isSlice := obj.Type().Underlying().(*types.Slice); !isSlice {
					return true
				}
				if _, seen := collected[obj]; !seen {
					collected[obj] = fill{rng: rng, app: m}
				}
			}
			return true
		})
		return true
	})
	if len(collected) == 0 {
		return
	}

	// Shape 2: a sink later consumes a collected slice. Report unless every
	// path from the range to the sink passes a sort of that slice.
	cfg := fi.CFG()
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := isSinkCall(info, call)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			obj := exprObj(info, arg)
			if obj == nil {
				continue
			}
			f, tracked := collected[obj]
			if !tracked {
				continue
			}
			sinkStmt := enclosingStmt(in, call)
			if sinkStmt == nil || cfg == nil {
				continue
			}
			if call.Pos() < f.rng.End() {
				continue // consumption inside the range itself is shape 1's job
			}
			avoid := func(s ast.Stmt) bool {
				switch s.(type) {
				case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt,
					*ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
					// Compound statements appear in the CFG as headers;
					// their bodies occupy their own blocks, which the walk
					// visits separately — inspecting the whole subtree here
					// would credit a sort that only one branch performs.
					return false
				}
				return stmtSortsObj(info, s, obj)
			}
			if cfg.PathAvoiding(f.rng, sinkStmt, avoid) {
				p.Reportf(call.Pos(), "%s consumes %s, which was collected from map iteration without a sort on every path; sort it before emitting", name, obj.Name())
			}
		}
		return true
	})
}

// sliceLeaves reports whether the collected slice leaves the function in
// a way the shape-2 check cannot follow: returned, captured by a
// closure, or address-taken. Deliberately narrower than FuncInfo.Escapes
// — passing the slice to a call is exactly the consumption the check
// inspects, so call arguments must not disqualify it.
func sliceLeaves(info *types.Info, fd *ast.FuncDecl, obj types.Object) bool {
	if fd == nil || fd.Body == nil {
		return true
	}
	leaves := false
	refersTo := func(e ast.Expr) bool { return exprObj(info, e) == obj }
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if leaves {
			return false
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if refersTo(r) {
					leaves = true
				}
			}
		case *ast.FuncLit:
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && info.Uses[id] == obj {
					leaves = true
				}
				return !leaves
			})
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND && refersTo(n.X) {
				leaves = true
			}
		}
		return !leaves
	})
	return leaves
}

// exprObj resolves an expression to the local object it names, looking
// through slice expressions (xs[:n] still denotes xs's backing order).
func exprObj(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SliceExpr:
		return exprObj(info, e.X)
	}
	return nil
}

// enclosingStmt walks parent links up from a call to the statement the
// CFG indexed.
func enclosingStmt(in *Inspector, n ast.Node) ast.Stmt {
	for cur := ast.Node(n); cur != nil; cur = in.Parent(cur) {
		if s, ok := cur.(ast.Stmt); ok {
			return s
		}
	}
	return nil
}

// stmtSortsObj reports whether the statement sorts obj. Matching is
// deliberately loose — the statement contains a sort-package call (or a
// method named Sort) and references obj anywhere — so nested idioms like
// sort.Sort(sort.Reverse(sort.StringSlice(keys))) count. Loose matching
// can only suppress a finding, never invent one.
func stmtSortsObj(info *types.Info, s ast.Stmt, obj types.Object) bool {
	hasSort, refsObj := false, false
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.SelectorExpr:
				if o, ok := info.Uses[fun.Sel].(*types.Func); ok && o.Pkg() != nil && o.Pkg().Path() == "sort" {
					hasSort = true
				}
				if fun.Sel.Name == "Sort" {
					hasSort = true
				}
			case *ast.Ident:
				if o, ok := info.Uses[fun].(*types.Func); ok && o.Pkg() != nil && o.Pkg().Path() == "sort" {
					hasSort = true
				}
			}
		case *ast.Ident:
			if info.Uses[n] == obj {
				refsObj = true
			}
		}
		return !(hasSort && refsObj)
	})
	return hasSort && refsObj
}
