package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// cfgSrc holds one function per control-flow shape. The a()/s()/t()/b()
// calls are the probe statements: tests ask whether control can get from
// a() to b() while avoiding s() (and sometimes t()).
const cfgSrc = `package p

func seq() {
	a()
	s()
	b()
}

func ifElse() {
	a()
	if cond() {
		s()
	} else {
		t()
	}
	b()
}

func ifNoElse() {
	a()
	if cond() {
		s()
	}
	b()
}

func condLoop() {
	a()
	for i := 0; cond(); i++ {
		s()
	}
	b()
}

func bareLoop() {
	a()
	for {
		s()
		if cond() {
			break
		}
		continue
	}
	b()
}

func rangeLoop(m map[int]int) {
	a()
	for range m {
		s()
	}
	b()
}

func switchDefault() {
	a()
	switch cond() {
	case true:
		s()
	default:
		t()
	}
	b()
}

func typeSwitch(v interface{}) {
	a()
	switch v.(type) {
	case int:
		s()
	}
	b()
}

func selectDefault(ch chan int) {
	a()
	select {
	case <-ch:
		s()
	default:
	}
	b()
}

func earlyReturn() {
	a()
	if cond() {
		return
	}
	s()
	b()
}

func gotoOut() {
	a()
	goto L
L:
	b()
}

func nestedLabeled() {
	a()
outer:
	for cond() {
		for cond() {
			s()
			continue outer
		}
		break outer
	}
	b()
}
`

type cfgFixture struct {
	g     *CFG
	probe map[string]ast.Stmt // a/s/t/b -> the ExprStmt calling it
}

func buildCFGFixtures(t *testing.T) map[string]cfgFixture {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg.go", cfgSrc, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]cfgFixture{}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		fx := cfgFixture{g: BuildCFG(fd.Body), probe: map[string]ast.Stmt{}}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok {
					fx.probe[id.Name] = es
				}
			}
			return true
		})
		out[fd.Name.Name] = fx
	}
	return out
}

func TestCFGPathAvoiding(t *testing.T) {
	fxs := buildCFGFixtures(t)
	avoid := func(fx cfgFixture, names ...string) func(ast.Stmt) bool {
		return func(st ast.Stmt) bool {
			for _, n := range names {
				if st == fx.probe[n] {
					return true
				}
			}
			return false
		}
	}

	cases := []struct {
		fn    string
		avoid []string
		want  bool
	}{
		// Same-block scan: s() sits strictly between a() and b().
		{"seq", []string{"s"}, false},
		{"seq", nil, true},
		// The else branch dodges s(), but no branch dodges both arms.
		{"ifElse", []string{"s"}, true},
		{"ifElse", []string{"s", "t"}, false},
		// No else: the cond -> join edge is the clean path.
		{"ifNoElse", []string{"s"}, true},
		// A guarded loop may run zero times.
		{"condLoop", []string{"s"}, true},
		{"rangeLoop", []string{"s"}, true},
		// for{} is modelled conservatively with a head -> exit edge, so a
		// clean path is still claimed (missing edges may hide paths, the
		// builder never removes them).
		{"bareLoop", []string{"s"}, true},
		// default clause dodges s(); with a default there is no head -> join
		// edge, so avoiding both arms fails.
		{"switchDefault", []string{"s"}, true},
		{"switchDefault", []string{"s", "t"}, false},
		// No default: the implicit fall-through edge is clean.
		{"typeSwitch", []string{"s"}, true},
		{"selectDefault", []string{"s"}, true},
		// The early return leads to Exit, not to b(); the only route to b()
		// passes through s().
		{"earlyReturn", []string{"s"}, false},
		{"earlyReturn", nil, true},
		{"nestedLabeled", []string{"s"}, true},
	}
	for _, tc := range cases {
		fx, ok := fxs[tc.fn]
		if !ok {
			t.Fatalf("no fixture %q", tc.fn)
		}
		got := fx.g.PathAvoiding(fx.probe["a"], fx.probe["b"], avoid(fx, tc.avoid...))
		if got != tc.want {
			t.Errorf("%s: PathAvoiding(a, b, avoid %v) = %v, want %v", tc.fn, tc.avoid, got, tc.want)
		}
	}
}

func TestCFGCornerCases(t *testing.T) {
	fxs := buildCFGFixtures(t)
	none := func(ast.Stmt) bool { return false }

	// goto is modelled like a return: the label target is unreachable in
	// the graph, so no path from a() to b() is claimed.
	gf := fxs["gotoOut"]
	if gf.g.PathAvoiding(gf.probe["a"], gf.probe["b"], none) {
		t.Error("gotoOut: claimed a path across a goto (modelled as return)")
	}

	// Backward queries find no path: control cannot flow from b() back to
	// a() in a straight-line function.
	sf := fxs["seq"]
	if sf.g.PathAvoiding(sf.probe["b"], sf.probe["a"], none) {
		t.Error("seq: claimed a backward path from b() to a()")
	}

	// Statements from a different function's graph are unknown and yield
	// the conservative false.
	if sf.g.PathAvoiding(gf.probe["a"], sf.probe["b"], none) {
		t.Error("foreign from-statement should yield false")
	}
	if sf.g.PathAvoiding(sf.probe["a"], gf.probe["b"], none) {
		t.Error("foreign to-statement should yield false")
	}

	// Entry/Exit wiring: every block is reachable from Entry except the
	// deliberate unreachable continuations after return/goto/branch.
	if sf.g.Entry == nil || sf.g.Exit == nil {
		t.Fatal("seq: nil Entry/Exit")
	}
}
