package obs

import (
	"sync"
	"time"
)

// Span is one timed interval of work. Start and Dur are in seconds:
// simulated-clock seconds when recorded by the discrete-event engine,
// wall-clock seconds since the recorder's epoch when recorded by the
// real goroutine pipeline. TID groups spans into rows (one per pipeline
// stage) in the Chrome trace viewer.
type Span struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat,omitempty"`
	TID   int               `json:"tid"`
	Start float64           `json:"start"`
	Dur   float64           `json:"dur"`
	Args  map[string]string `json:"args,omitempty"`
}

// End returns the span's end time in seconds.
func (s Span) End() float64 { return s.Start + s.Dur }

// SpanRecorder accumulates spans; it is safe for concurrent use, and all
// methods are no-ops on a nil receiver (Since returns 0). Export with
// WriteChromeTrace.
type SpanRecorder struct {
	mu          sync.Mutex
	epoch       time.Time
	spans       []Span
	threadNames map[int]string
}

// NewSpanRecorder returns a recorder whose epoch (the zero of Since) is
// now.
func NewSpanRecorder() *SpanRecorder {
	return &SpanRecorder{epoch: time.Now(), threadNames: map[int]string{}} //llmpq:allow(simwallclock): the recorder's epoch anchors real-run traces; sim runs stamp spans with virtual time instead
}

// Since returns wall-clock seconds elapsed since the recorder's epoch —
// the Start timestamp source for real (non-simulated) spans. Returns 0 on
// a nil recorder.
func (r *SpanRecorder) Since() float64 {
	if r == nil {
		return 0
	}
	return time.Since(r.epoch).Seconds() //llmpq:allow(simwallclock): wall timestamps for real (non-simulated) spans only
}

// Record appends one span.
func (r *SpanRecorder) Record(s Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spans = append(r.spans, s)
	r.mu.Unlock()
}

// NameThread attaches a human-readable row name to a TID ("stage 0",
// "master", …); emitted as Chrome thread_name metadata.
func (r *SpanRecorder) NameThread(tid int, name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.threadNames[tid] = name
	r.mu.Unlock()
}

// Len returns the number of recorded spans (0 on nil).
func (r *SpanRecorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Spans returns a copy of the recorded spans (nil on a nil recorder).
func (r *SpanRecorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.spans...)
}

// threads returns a copy of the TID→name map.
func (r *SpanRecorder) threads() map[int]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[int]string, len(r.threadNames))
	for k, v := range r.threadNames {
		out[k] = v
	}
	return out
}
