package obs

import (
	"io"
	"os"
)

// WriteArtifact creates path and streams one export into it, surfacing
// the writer's error first and the file-close error otherwise. Every
// command that dumps a metrics or trace artifact funnels through this so
// the create/write/close discipline lives in one place.
func WriteArtifact(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := write(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
