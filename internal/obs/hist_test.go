package obs

import (
	"math"
	"sync"
	"testing"

	"repro/internal/core/floats"
)

// TestHistogramEdgeCases is the table-driven edge-case suite: empty,
// single sample, exact-bound samples, overflow bucket, NaN, and quantile
// clamping behaviour.
func TestHistogramEdgeCases(t *testing.T) {
	bounds := []float64{1, 10, 100}
	cases := []struct {
		name    string
		samples []float64
		count   uint64
		sum     float64
		q50     float64 // want NaN when empty
		q0      float64
		q1      float64
	}{
		{
			name:    "empty",
			samples: nil,
			count:   0, sum: 0,
			q50: math.NaN(), q0: math.NaN(), q1: math.NaN(),
		},
		{
			name:    "single sample",
			samples: []float64{5},
			count:   1, sum: 5,
			// Every quantile of a single observation is that observation:
			// the bucket is clamped to [min, max] = [5, 5].
			q50: 5, q0: 5, q1: 5,
		},
		{
			name:    "sample on exact bucket bound",
			samples: []float64{1, 1, 1, 1},
			count:   4, sum: 4,
			q50: 1, q0: 1, q1: 1,
		},
		{
			name:    "overflow bucket",
			samples: []float64{500, 1000},
			count:   2, sum: 1500,
			// Both land past the last bound; interpolation happens in
			// [max(100, min), max] = [500, 1000].
			q50: 750, q0: 500, q1: 1000,
		},
		{
			name:    "nan dropped",
			samples: []float64{math.NaN(), 2},
			count:   1, sum: 2,
			q50: 2, q0: 2, q1: 2,
		},
		{
			name:    "uniform spread",
			samples: []float64{0.5, 5, 50, 500},
			count:   4, sum: 555.5,
			// target=2 falls on the cumulative edge of bucket (1,10]:
			// interpolation yields its upper edge.
			q50: 10, q0: 0.5, q1: 500,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := newHistogram(bounds)
			for _, v := range tc.samples {
				h.Observe(v)
			}
			if h.Count() != tc.count {
				t.Errorf("count = %d, want %d", h.Count(), tc.count)
			}
			if !floats.EqTol(h.Sum(), tc.sum, 1e-9) {
				t.Errorf("sum = %g, want %g", h.Sum(), tc.sum)
			}
			checkQ := func(q, want float64) {
				got := h.Quantile(q)
				if math.IsNaN(want) {
					if !math.IsNaN(got) {
						t.Errorf("quantile(%g) = %g, want NaN", q, got)
					}
					return
				}
				if !floats.EqTol(got, want, 1e-9) {
					t.Errorf("quantile(%g) = %g, want %g", q, got, want)
				}
			}
			checkQ(0.5, tc.q50)
			checkQ(0, tc.q0)
			checkQ(1, tc.q1)
		})
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	h := newHistogram(ExpBuckets(0.001, 2, 12))
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 250)
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := h.Quantile(q)
		if v < prev-1e-12 {
			t.Fatalf("quantile not monotone: q=%.2f gives %g after %g", q, v, prev)
		}
		prev = v
	}
	// The p50 of a uniform 0.004..4 sample should land near 2.
	if p50 := h.Quantile(0.5); p50 < 1 || p50 > 3 {
		t.Errorf("p50 = %g, want ≈2", p50)
	}
}

// TestHistogramConcurrentWriters hammers one histogram from many
// goroutines; run under -race this is the data-race gate for the
// instrumented pipeline hot path.
func TestHistogramConcurrentWriters(t *testing.T) {
	h := newHistogram([]float64{0.25, 0.5, 0.75})
	const workers = 16
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(float64(w*perWorker+i) / float64(workers*perWorker))
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*perWorker {
		t.Errorf("count = %d, want %d", h.Count(), workers*perWorker)
	}
	counts, count, _ := h.snapshot()
	var tot uint64
	for _, c := range counts {
		tot += c
	}
	if tot != count {
		t.Errorf("bucket counts sum to %d, count is %d", tot, count)
	}
}
