package obs

import (
	"math"
	"sort"
	"sync"
)

// Counter is a monotonically increasing value. All methods are safe for
// concurrent use and are no-ops on a nil receiver.
type Counter struct {
	mu sync.Mutex
	v  float64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter. Negative deltas are ignored (counters are
// monotone by contract).
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	c.mu.Lock()
	c.v += v
	c.mu.Unlock()
}

// Value returns the current total (0 on nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is an instantaneous value that can move both ways. All methods
// are safe for concurrent use and are no-ops on a nil receiver.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add offsets the value (negative deltas allowed).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v += v
	g.mu.Unlock()
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram counts observations into fixed buckets (ascending upper
// bounds plus an implicit +Inf overflow bucket) and tracks count, sum,
// min, and max, from which Quantile interpolates estimates. All methods
// are safe for concurrent use and are no-ops on a nil receiver.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1; last = overflow
	count  uint64
	sum    float64
	min    float64
	max    float64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// Observe records one sample. NaN samples are dropped.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v; len(bounds) = overflow
	h.counts[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the average observation, or NaN when empty or nil.
func (h *Histogram) Mean() float64 {
	if h == nil {
		return math.NaN()
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return math.NaN()
	}
	return h.sum / float64(h.count)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// inside the containing bucket, clamped to the observed [min, max]. It
// returns NaN when the histogram is empty or nil.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := q * float64(h.count)
	cum := 0.0
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < target {
			continue
		}
		// Bucket edges, clamped to what was actually observed.
		lo := h.min
		if i > 0 && h.bounds[i-1] > lo {
			lo = h.bounds[i-1]
		}
		hi := h.max
		if i < len(h.bounds) && h.bounds[i] < hi {
			hi = h.bounds[i]
		}
		if hi <= lo {
			return hi
		}
		return lo + (hi-lo)*(target-prev)/float64(c)
	}
	return h.max
}

// snapshot returns a consistent copy of the histogram state for export.
func (h *Histogram) snapshot() (counts []uint64, count uint64, sum float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]uint64(nil), h.counts...), h.count, h.sum
}
