package obs

import (
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/core/floats"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("llmpq_test_total", L("stage", "0"))
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotone
	if !floats.AlmostEqual(c.Value(), 3) {
		t.Errorf("counter = %g, want 3", c.Value())
	}
	// Same name+labels returns the same series.
	if again := r.Counter("llmpq_test_total", L("stage", "0")); again != c {
		t.Error("counter lookup did not return the existing series")
	}
	// Different labels are a different series.
	if other := r.Counter("llmpq_test_total", L("stage", "1")); other == c {
		t.Error("distinct labels mapped to the same series")
	}

	g := r.Gauge("llmpq_test_gauge")
	g.Set(4)
	g.Add(-1.5)
	if !floats.AlmostEqual(g.Value(), 2.5) {
		t.Errorf("gauge = %g, want 2.5", g.Value())
	}
}

func TestLabelOrderIsCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("m", L("b", "2"), L("a", "1"))
	b := r.Counter("m", L("a", "1"), L("b", "2"))
	if a != b {
		t.Error("label order changed series identity")
	}
}

func TestKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Error("expected panic on kind clash")
		}
	}()
	r.Gauge("m")
}

func TestHistogramBucketClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", []float64{1, 2})
	defer func() {
		if recover() == nil {
			t.Error("expected panic on bucket clash")
		}
	}()
	r.Histogram("h", []float64{1, 2, 3})
}

// TestNilRegistryIsNoOp pins the zero-instrumentation contract: every
// method chain on a nil registry/recorder is safe, does nothing, and
// allocates nothing on the hot path.
func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Gauge("g").Set(1)
	r.Histogram("h", []float64{1}).Observe(0.5)
	if v := r.Counter("c").Value(); v > 0 || v < 0 {
		t.Errorf("nil counter value = %g", v)
	}
	if !math.IsNaN(r.Histogram("h", []float64{1}).Quantile(0.5)) {
		t.Error("nil histogram quantile should be NaN")
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatalf("nil WriteText: %v", err)
	}
	if sb.Len() != 0 {
		t.Errorf("nil registry wrote %q", sb.String())
	}

	var rec *SpanRecorder
	rec.Record(Span{Name: "x"})
	rec.NameThread(0, "x")
	if rec.Len() != 0 || rec.Spans() != nil {
		t.Error("nil recorder retained spans")
	}
	if s := rec.Since(); s > 0 || s < 0 {
		t.Errorf("nil recorder Since = %g", s)
	}

	// Pre-resolved nil metrics (the pattern the engine uses) must not
	// allocate per observation.
	c := r.Counter("c")
	h := r.Histogram("h", []float64{1})
	allocs := testing.AllocsPerRun(100, func() {
		c.Add(1)
		h.Observe(2)
		rec.Record(Span{Name: "y"})
	})
	if allocs > 0 {
		t.Errorf("nil-metric hot path allocates %.1f per op", allocs)
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("llmpq_b_total", L("stage", "1")).Add(2)
	r.Counter("llmpq_b_total", L("stage", "0")).Add(1)
	r.Gauge("llmpq_a_gauge").Set(1.5)
	h := r.Histogram("llmpq_c_seconds", []float64{0.5, 1}, L("stage", "0"))
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(99)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# TYPE llmpq_a_gauge gauge
llmpq_a_gauge 1.5
# TYPE llmpq_b_total counter
llmpq_b_total{stage="0"} 1
llmpq_b_total{stage="1"} 2
# TYPE llmpq_c_seconds histogram
llmpq_c_seconds_bucket{stage="0",le="0.5"} 1
llmpq_c_seconds_bucket{stage="0",le="1"} 2
llmpq_c_seconds_bucket{stage="0",le="+Inf"} 3
llmpq_c_seconds_sum{stage="0"} 100
llmpq_c_seconds_count{stage="0"} 3
`
	if got != want {
		t.Errorf("WriteText mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(1, 2, 4)
	wantExp := []float64{1, 2, 4, 8}
	for i := range wantExp {
		if !floats.AlmostEqual(exp[i], wantExp[i]) {
			t.Errorf("ExpBuckets[%d] = %g, want %g", i, exp[i], wantExp[i])
		}
	}
	lin := LinearBuckets(0.1, 0.1, 3)
	wantLin := []float64{0.1, 0.2, 0.3}
	for i := range wantLin {
		if !floats.EqTol(lin[i], wantLin[i], 1e-12) {
			t.Errorf("LinearBuckets[%d] = %g, want %g", i, lin[i], wantLin[i])
		}
	}
	if err := validBounds(TimeBuckets()); err != nil {
		t.Errorf("TimeBuckets invalid: %v", err)
	}
	if err := validBounds(FractionBuckets()); err != nil {
		t.Errorf("FractionBuckets invalid: %v", err)
	}
}

func TestRegistryConcurrentMixedUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 200; k++ {
				r.Counter("c", L("w", "x")).Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", []float64{1, 10}).Observe(float64(k))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c", L("w", "x")).Value(); !floats.AlmostEqual(got, 1600) {
		t.Errorf("concurrent counter = %g, want 1600", got)
	}
	if got := r.Histogram("h", []float64{1, 10}).Count(); got != 1600 {
		t.Errorf("concurrent histogram count = %d, want 1600", got)
	}
}
