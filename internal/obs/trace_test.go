package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"repro/internal/core/floats"
)

func TestChromeTraceRoundTrip(t *testing.T) {
	rec := NewSpanRecorder()
	rec.NameThread(0, "stage 0")
	rec.NameThread(1, "stage 1")
	want := []Span{
		{Name: "prefill", Cat: "prefill", TID: 0, Start: 0, Dur: 0.125,
			Args: map[string]string{"mb": "0"}},
		{Name: "prefill", Cat: "prefill", TID: 1, Start: 0.125, Dur: 0.1},
		{Name: "decode", Cat: "decode", TID: 0, Start: 0.3, Dur: 0.0625,
			Args: map[string]string{"mb": "1", "round": "3"}},
	}
	// Record out of order: export must sort by (start, tid).
	rec.Record(want[2])
	rec.Record(want[0])
	rec.Record(want[1])

	var sb strings.Builder
	if err := rec.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	raw := sb.String()

	// The file must be a valid JSON object with a traceEvents array — the
	// shape chrome://tracing and Perfetto load.
	var top map[string]json.RawMessage
	if err := json.Unmarshal([]byte(raw), &top); err != nil {
		t.Fatalf("emitted trace is not a JSON object: %v", err)
	}
	if _, ok := top["traceEvents"]; !ok {
		t.Fatal("emitted trace has no traceEvents key")
	}

	got, err := ParseChromeTrace(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("round-trip returned %d spans, want %d", len(got), len(want))
	}
	for i, g := range got {
		w := want[i]
		if g.Name != w.Name || g.Cat != w.Cat || g.TID != w.TID {
			t.Errorf("span %d = %+v, want %+v", i, g, w)
		}
		if !floats.EqTol(g.Start, w.Start, 1e-12) || !floats.EqTol(g.Dur, w.Dur, 1e-12) {
			t.Errorf("span %d timing = (%g, %g), want (%g, %g)", i, g.Start, g.Dur, w.Start, w.Dur)
		}
		if len(g.Args) != len(w.Args) {
			t.Errorf("span %d args = %v, want %v", i, g.Args, w.Args)
			continue
		}
		for k, v := range w.Args {
			if g.Args[k] != v {
				t.Errorf("span %d arg %q = %q, want %q", i, k, g.Args[k], v)
			}
		}
	}
}

func TestChromeTraceEmptyAndNil(t *testing.T) {
	var sb strings.Builder
	var rec *SpanRecorder
	if err := rec.WriteChromeTrace(&sb); err != nil {
		t.Fatalf("nil recorder: %v", err)
	}
	spans, err := ParseChromeTrace(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("nil recorder emitted unparseable trace: %v", err)
	}
	if len(spans) != 0 {
		t.Errorf("nil recorder trace has %d spans", len(spans))
	}

	sb.Reset()
	if err := NewSpanRecorder().WriteChromeTrace(&sb); err != nil {
		t.Fatalf("empty recorder: %v", err)
	}
	if _, err := ParseChromeTrace(strings.NewReader(sb.String())); err != nil {
		t.Fatalf("empty recorder emitted unparseable trace: %v", err)
	}
}

func TestParseChromeTraceRejectsGarbage(t *testing.T) {
	if _, err := ParseChromeTrace(strings.NewReader("not json")); err == nil {
		t.Error("expected parse error")
	}
}

func TestSpanRecorderConcurrent(t *testing.T) {
	rec := NewSpanRecorder()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				rec.Record(Span{Name: "s", TID: w, Start: rec.Since(), Dur: 1e-6})
			}
		}()
	}
	wg.Wait()
	if rec.Len() != 800 {
		t.Errorf("recorded %d spans, want 800", rec.Len())
	}
	var sb strings.Builder
	if err := rec.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	spans, err := ParseChromeTrace(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 800 {
		t.Errorf("trace has %d spans, want 800", len(spans))
	}
}

func TestSpanEnd(t *testing.T) {
	s := Span{Start: 1.5, Dur: 0.25}
	if !floats.EqTol(s.End(), 1.75, 1e-12) {
		t.Errorf("End = %g, want 1.75", s.End())
	}
}
