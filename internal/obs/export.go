package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteText dumps every family in a Prometheus-style text format, sorted
// by family name and label signature so output is deterministic.
// Histograms expand to cumulative _bucket{le=...} series plus _sum and
// _count, like the Prometheus exposition format. A nil registry writes
// nothing.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		sigs := make([]string, 0, len(f.series))
		for sig := range f.series {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			s := f.series[sig]
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch m := s.metric.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelText(s.labels, ""), fnum(m.Value()))
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelText(s.labels, ""), fnum(m.Value()))
		return err
	case *Histogram:
		counts, count, sum := m.snapshot()
		cum := uint64(0)
		for i, c := range counts {
			cum += c
			le := "+Inf"
			if i < len(f.bounds) {
				le = fnum(f.bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelText(s.labels, le), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelText(s.labels, ""), fnum(sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelText(s.labels, ""), count)
		return err
	default:
		return fmt.Errorf("obs: unknown metric type %T", s.metric)
	}
}

// labelText renders {k="v",...}; le, when non-empty, is appended as the
// histogram bucket bound label.
func labelText(ls []Label, le string) string {
	if len(ls) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	if le != "" {
		if len(ls) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "le=%q", le)
	}
	b.WriteByte('}')
	return b.String()
}

func fnum(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64) //llmpq:ignore bitwidthset — strconv float bit size, not a quantization width
}

// chromeEvent is one trace_event entry; ts/dur are microseconds, per the
// Chrome trace format spec.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit,omitempty"`
}

// WriteChromeTrace exports the recorded spans as Chrome trace_event JSON
// ("X" complete events, one row per TID), loadable in chrome://tracing or
// Perfetto. Events are sorted by (start, tid) so concurrent recorders
// still produce deterministic files. A nil recorder writes an empty (but
// valid) trace.
func (r *SpanRecorder) WriteChromeTrace(w io.Writer) error {
	var spans []Span
	var threads map[int]string
	if r != nil {
		spans = r.Spans()
		threads = r.threads()
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start < spans[j].Start {
			return true
		}
		if spans[i].Start > spans[j].Start {
			return false
		}
		return spans[i].TID < spans[j].TID
	})
	tr := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	tids := make([]int, 0, len(threads))
	for tid := range threads {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", TID: tid,
			Args: map[string]string{"name": threads[tid]},
		})
	}
	for _, s := range spans {
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: s.Name, Cat: s.Cat, Ph: "X",
			TS: s.Start * 1e6, Dur: s.Dur * 1e6,
			TID: s.TID, Args: s.Args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}

// ParseChromeTrace reads trace_event JSON (the object form emitted by
// WriteChromeTrace) back into spans, converting microseconds to seconds.
// Metadata and non-complete events are skipped.
func ParseChromeTrace(rd io.Reader) ([]Span, error) {
	var tr chromeTrace
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&tr); err != nil {
		return nil, fmt.Errorf("obs: parse chrome trace: %w", err)
	}
	var out []Span
	for _, ev := range tr.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		out = append(out, Span{
			Name: ev.Name, Cat: ev.Cat, TID: ev.TID,
			Start: ev.TS / 1e6, Dur: ev.Dur / 1e6, Args: ev.Args,
		})
	}
	return out, nil
}
