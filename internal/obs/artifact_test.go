package obs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteArtifactRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.txt")
	reg := NewRegistry()
	reg.Counter("llmpq_test_total").Add(3)
	if err := WriteArtifact(path, reg.WriteText); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "llmpq_test_total 3") {
		t.Errorf("artifact missing counter:\n%s", b)
	}
}

func TestWriteArtifactSurfacesWriteError(t *testing.T) {
	boom := errors.New("export exploded")
	path := filepath.Join(t.TempDir(), "broken.txt")
	err := WriteArtifact(path, func(io.Writer) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("want the writer's error, got %v", err)
	}
}

func TestWriteArtifactCreateError(t *testing.T) {
	if err := WriteArtifact(filepath.Join(t.TempDir(), "no", "such", "dir.txt"),
		func(io.Writer) error { return nil }); err == nil {
		t.Fatal("uncreatable path must fail")
	}
}
