// Package obs is the stdlib-only observability layer shared by the
// simulated engine, the real goroutine pipeline, the online simulator,
// and the solvers (DESIGN.md §8):
//
//   - Registry: a concurrency-safe metrics registry of labeled counter,
//     gauge, and fixed-bucket histogram families, dumped in a
//     Prometheus-style text format (WriteText).
//   - SpanRecorder: a trace of timed spans, exported as Chrome
//     trace_event JSON (WriteChromeTrace) loadable in chrome://tracing
//     or Perfetto.
//
// Both types treat a nil receiver as a valid no-op: every method on a
// nil *Registry, *Counter, *Gauge, *Histogram, or *SpanRecorder returns
// immediately without allocating, so instrumented code paths need no
// "is observability on?" branches and the uninstrumented configuration
// costs nothing.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Label is one key=value dimension of a metric series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for Label{Key: key, Value: value}.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// kind discriminates metric families.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// series is one labeled instance of a family.
type series struct {
	labels []Label // sorted by key
	metric interface{}
}

// family groups all series sharing a metric name.
type family struct {
	name   string
	kind   kind
	bounds []float64 // histogram families only
	series map[string]*series
}

// Registry is a concurrency-safe collection of metric families. The zero
// value is not usable; construct with NewRegistry. A nil *Registry is a
// valid no-op sink.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Counter returns the counter series for name+labels, creating it on
// first use. Returns nil (a no-op counter) when the registry is nil.
// Panics if name is already registered with a different metric kind —
// that is a programming error, not a runtime condition.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	m := r.lookup(name, kindCounter, nil, labels, func() interface{} { return &Counter{} })
	return m.(*Counter)
}

// Gauge returns the gauge series for name+labels, creating it on first
// use. Returns nil (a no-op gauge) when the registry is nil.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	m := r.lookup(name, kindGauge, nil, labels, func() interface{} { return &Gauge{} })
	return m.(*Gauge)
}

// Histogram returns the histogram series for name+labels, creating it on
// first use with the given ascending bucket upper bounds (an implicit
// +Inf overflow bucket is always appended). Returns nil (a no-op
// histogram) when the registry is nil. All series of one family share the
// family's bounds; passing different bounds for an existing family panics.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if err := validBounds(bounds); err != nil {
		panic(fmt.Sprintf("obs: histogram %q: %v", name, err))
	}
	m := r.lookup(name, kindHistogram, bounds, labels, func() interface{} { return newHistogram(bounds) })
	return m.(*Histogram)
}

func (r *Registry) lookup(name string, k kind, bounds []float64, labels []Label, mk func() interface{}) interface{} {
	ls := sortedLabels(labels)
	sig := labelSignature(ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, kind: k, bounds: append([]float64(nil), bounds...), series: map[string]*series{}}
		r.families[name] = f
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, k))
	}
	if k == kindHistogram && !sameBounds(f.bounds, bounds) {
		panic(fmt.Sprintf("obs: histogram %q re-registered with different buckets", name))
	}
	s, ok := f.series[sig]
	if !ok {
		s = &series{labels: ls, metric: mk()}
		f.series[sig] = s
	}
	return s.metric
}

// sortedLabels copies and sorts labels by key (stable export order).
func sortedLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

func labelSignature(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		// Bucket bounds are configuration constants, compared for identity,
		// not computed quantities: exact comparison is intended here.
		if a[i] < b[i] || a[i] > b[i] {
			return false
		}
	}
	return true
}

func validBounds(bounds []float64) error {
	if len(bounds) == 0 {
		return fmt.Errorf("need at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return fmt.Errorf("bounds must be strictly ascending, got %v", bounds)
		}
	}
	return nil
}

// ExpBuckets returns n strictly ascending bounds start, start·factor,
// start·factor², … — the usual shape for latency histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("obs: ExpBuckets(%g, %g, %d): need start>0, factor>1, n>=1", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n strictly ascending bounds start, start+width, …
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n < 1 {
		panic(fmt.Sprintf("obs: LinearBuckets(%g, %g, %d): need width>0, n>=1", start, width, n))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// TimeBuckets is the default bucket ladder for second-scale durations:
// 1 µs · 4ⁱ for i in [0,16), i.e. 1 µs … ~4.5 min.
func TimeBuckets() []float64 { return ExpBuckets(1e-6, 4, 16) }

// FractionBuckets is the default ladder for ratios in [0,1] (occupancy,
// utilization): 0.1, 0.2, …, 1.0.
func FractionBuckets() []float64 { return LinearBuckets(0.1, 0.1, 10) }
