// Package model describes the decoder-only transformer families the paper
// evaluates (OPT and BLOOM) at the metadata level: layer shapes, parameter
// counts, and per-phase FLOP/memory-traffic accounting.
//
// LLM-PQ's assigner never touches real weights of the big models; every
// planning decision is a function of these shapes (paper §4.1). The small
// reference models (used for quality measurement) are realized as actual
// networks in internal/nn using the same configs.
package model

import (
	"fmt"
	"sort"
)

// Family identifies a model family with a shared architecture.
type Family string

const (
	// OPT is Meta's Open Pre-trained Transformer family.
	OPT Family = "opt"
	// BLOOM is the BigScience multilingual family.
	BLOOM Family = "bloom"
)

// Config is the architectural metadata of a decoder-only LLM.
//
// All decoder layers of one model are identical in shape; this is the
// property the assigner's structured solver exploits (DESIGN.md §5.1).
type Config struct {
	Name      string // e.g. "opt-30b"
	Family    Family
	Hidden    int // hidden dimension h1
	FFN       int // feed-forward inner dimension (4*Hidden for OPT/BLOOM)
	Layers    int // number of decoder layers L
	Heads     int // attention heads
	VocabSize int // vocabulary size
	MaxPosEmb int // maximum position embeddings
	TiedEmbed bool
}

// HeadDim returns the per-head dimension.
func (c Config) HeadDim() int { return c.Hidden / c.Heads }

// LayerParams returns the parameter count of one decoder layer:
// QKV + output projections (4·h²), the two MLP matrices (2·h·ffn),
// their biases, and two LayerNorms.
func (c Config) LayerParams() int64 {
	h := int64(c.Hidden)
	f := int64(c.FFN)
	attn := 4*h*h + 4*h  // QKV+O weights and biases
	mlp := 2*h*f + f + h // fc1, fc2 weights and biases
	ln := 2 * (2 * h)    // two LayerNorms, weight+bias
	return attn + mlp + ln
}

// EmbedParams returns the parameter count of the embedding block:
// token embeddings plus (learned) position embeddings plus the final
// LayerNorm. BLOOM uses ALiBi rather than learned positions; we keep the
// token-embedding-dominated count, which is what the memory model needs.
func (c Config) EmbedParams() int64 {
	tok := int64(c.VocabSize) * int64(c.Hidden)
	pos := int64(c.MaxPosEmb) * int64(c.Hidden)
	if c.Family == BLOOM {
		pos = 0
	}
	lnf := int64(2 * c.Hidden)
	return tok + pos + lnf
}

// TotalParams returns the full parameter count.
func (c Config) TotalParams() int64 {
	n := c.EmbedParams() + int64(c.Layers)*c.LayerParams()
	if !c.TiedEmbed {
		// separate LM head projection
		n += int64(c.VocabSize) * int64(c.Hidden)
	}
	return n
}

// PhaseShape describes one inference step's input shape.
type PhaseShape struct {
	Batch   int // micro-batch size
	Prompt  int // prompt length v (prefill) — tokens processed this step
	Context int // past KV length (decode); 0 during prefill
}

// LayerFLOPs returns the floating-point operations of one decoder layer for
// the given shape. Prefill processes Prompt tokens at once; decode processes
// one token attending over Context+1 positions.
func (c Config) LayerFLOPs(sh PhaseShape, prefill bool) float64 {
	h := float64(c.Hidden)
	f := float64(c.FFN)
	b := float64(sh.Batch)
	var tokens, attnSpan float64
	if prefill {
		tokens = float64(sh.Prompt)
		attnSpan = float64(sh.Prompt)
	} else {
		tokens = 1
		attnSpan = float64(sh.Context + 1)
	}
	// Projections: QKV+O = 4 matmuls of [tokens,h]x[h,h] → 2*4*tokens*h^2.
	proj := 8 * b * tokens * h * h
	// Attention scores + context mix: 2 * (2 * tokens * attnSpan * h).
	attn := 4 * b * tokens * attnSpan * h
	// MLP: two matmuls [tokens,h]x[h,f] → 2*2*tokens*h*f.
	mlp := 4 * b * tokens * h * f
	return proj + attn + mlp
}

// LayerWeightBytes returns the bytes of one decoder layer's weights at the
// given bitwidth (weight-only quantization; norms/biases stay FP16).
func (c Config) LayerWeightBytes(bits int) float64 {
	h := float64(c.Hidden)
	f := float64(c.FFN)
	linear := 4*h*h + 2*h*f // quantizable linear weights
	rest := 4*h + f + h + 4*h
	return linear*float64(bits)/8 + rest*2
}

// LayerMOPs returns the memory traffic in bytes of one decoder layer:
// weight reads (at the layer's bitwidth), KV-cache reads/writes, and
// activation traffic. This is the memory-bound side of the roofline that
// dominates the decode phase (paper §4.1: decode arithmetic intensity ≈43–48
// vs ≈6000–9500 for prefill).
func (c Config) LayerMOPs(sh PhaseShape, prefill bool, bits int, kvBits int) float64 {
	h := float64(c.Hidden)
	b := float64(sh.Batch)
	w := c.LayerWeightBytes(bits)
	kvElem := float64(kvBits) / 8
	var kv, act float64
	if prefill {
		s := float64(sh.Prompt)
		kv = 2 * b * s * h * kvElem // write K,V
		act = 8 * b * s * h * 2     // activations in/out FP16-ish
	} else {
		ctx := float64(sh.Context + 1)
		kv = 2*b*ctx*h*kvElem + 2*b*h*kvElem // read all past K,V + write new
		act = 8 * b * h * 2
	}
	return w + kv + act
}

// KVBytesPerLayer returns the KV-cache bytes one layer holds for a batch
// with maximum sequence length maxSeq (prompt + generated), at kvBits.
func (c Config) KVBytesPerLayer(batch, maxSeq, kvBits int) float64 {
	return 2 * float64(batch) * float64(maxSeq) * float64(c.Hidden) * float64(kvBits) / 8
}

// EmbedBytes returns the bytes of the embedding block (kept in FP16: the
// paper quantizes only decoder-layer linear weights).
func (c Config) EmbedBytes() float64 { return float64(c.EmbedParams()) * 2 }

// LMHeadBytes returns the bytes of the output projection (FP16).
func (c Config) LMHeadBytes() float64 {
	if c.TiedEmbed {
		return 0
	}
	return float64(c.VocabSize) * float64(c.Hidden) * 2
}

var registry = map[string]Config{}

func register(c Config) Config {
	registry[c.Name] = c
	return c
}

// Predefined model configurations (real published shapes).
var (
	OPT125M = register(Config{Name: "opt-125m", Family: OPT, Hidden: 768, FFN: 3072, Layers: 12, Heads: 12, VocabSize: 50272, MaxPosEmb: 2048, TiedEmbed: true})
	OPT1B3  = register(Config{Name: "opt-1.3b", Family: OPT, Hidden: 2048, FFN: 8192, Layers: 24, Heads: 32, VocabSize: 50272, MaxPosEmb: 2048, TiedEmbed: true})
	OPT13B  = register(Config{Name: "opt-13b", Family: OPT, Hidden: 5120, FFN: 20480, Layers: 40, Heads: 40, VocabSize: 50272, MaxPosEmb: 2048, TiedEmbed: true})
	OPT30B  = register(Config{Name: "opt-30b", Family: OPT, Hidden: 7168, FFN: 28672, Layers: 48, Heads: 56, VocabSize: 50272, MaxPosEmb: 2048, TiedEmbed: true})
	OPT66B  = register(Config{Name: "opt-66b", Family: OPT, Hidden: 9216, FFN: 36864, Layers: 64, Heads: 72, VocabSize: 50272, MaxPosEmb: 2048, TiedEmbed: true})
	OPT175B = register(Config{Name: "opt-175b", Family: OPT, Hidden: 12288, FFN: 49152, Layers: 96, Heads: 96, VocabSize: 50272, MaxPosEmb: 2048, TiedEmbed: true})

	BLOOM560M = register(Config{Name: "bloom-560m", Family: BLOOM, Hidden: 1024, FFN: 4096, Layers: 24, Heads: 16, VocabSize: 250880, MaxPosEmb: 2048, TiedEmbed: true})
	BLOOM1B7  = register(Config{Name: "bloom-1b7", Family: BLOOM, Hidden: 2048, FFN: 8192, Layers: 24, Heads: 16, VocabSize: 250880, MaxPosEmb: 2048, TiedEmbed: true})
	BLOOM3B   = register(Config{Name: "bloom-3b", Family: BLOOM, Hidden: 2560, FFN: 10240, Layers: 30, Heads: 32, VocabSize: 250880, MaxPosEmb: 2048, TiedEmbed: true})
	BLOOM176B = register(Config{Name: "bloom-176b", Family: BLOOM, Hidden: 14336, FFN: 57344, Layers: 70, Heads: 112, VocabSize: 250880, MaxPosEmb: 2048, TiedEmbed: true})
)

// ByName returns a registered config.
func ByName(name string) (Config, error) {
	c, ok := registry[name]
	if !ok {
		return Config{}, fmt.Errorf("model: unknown model %q (have %v)", name, Names())
	}
	return c, nil
}

// Names lists registered model names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
