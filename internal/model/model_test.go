package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTotalParamsOrderOfMagnitude(t *testing.T) {
	cases := []struct {
		cfg  Config
		want float64 // published parameter count
		tol  float64 // relative tolerance
	}{
		{OPT125M, 125e6, 0.15},
		{OPT1B3, 1.3e9, 0.10},
		{OPT13B, 13e9, 0.05},
		{OPT30B, 30e9, 0.05},
		{OPT66B, 66e9, 0.05},
		{OPT175B, 175e9, 0.05},
		{BLOOM560M, 560e6, 0.15},
		{BLOOM1B7, 1.7e9, 0.10},
		{BLOOM3B, 3e9, 0.10},
		{BLOOM176B, 176e9, 0.05},
	}
	for _, c := range cases {
		got := float64(c.cfg.TotalParams())
		if math.Abs(got-c.want)/c.want > c.tol {
			t.Errorf("%s: TotalParams=%.3g, published %.3g (tol %.0f%%)", c.cfg.Name, got, c.want, c.tol*100)
		}
	}
}

func TestByName(t *testing.T) {
	c, err := ByName("opt-30b")
	if err != nil {
		t.Fatal(err)
	}
	if c.Hidden != 7168 || c.Layers != 48 {
		t.Errorf("opt-30b shape wrong: %+v", c)
	}
	if _, err := ByName("gpt-5"); err == nil {
		t.Error("expected error for unknown model")
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if len(names) != 10 {
		t.Fatalf("expected 10 registered models, got %d: %v", len(names), names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("names not sorted: %q >= %q", names[i-1], names[i])
		}
	}
}

func TestPrefillMoreComputeIntensiveThanDecode(t *testing.T) {
	// Paper §4.1: prefill arithmetic intensity is ~100x decode's.
	sh := PhaseShape{Batch: 32, Prompt: 512, Context: 512}
	for _, cfg := range []Config{OPT30B, OPT175B} {
		pf := cfg.LayerFLOPs(sh, true) / cfg.LayerMOPs(sh, true, 16, 16)
		df := cfg.LayerFLOPs(sh, false) / cfg.LayerMOPs(sh, false, 16, 16)
		if pf < 50*df {
			t.Errorf("%s: prefill AI %.1f not ≫ decode AI %.1f", cfg.Name, pf, df)
		}
	}
}

func TestDecodeArithmeticIntensityMatchesPaper(t *testing.T) {
	// Paper: decode AI for OPT-175b and OPT-30b at batch 32, prompt 512 is
	// 48 and 43. Our accounting should land in the same ballpark (20–80).
	sh := PhaseShape{Batch: 32, Prompt: 512, Context: 512}
	for _, c := range []struct {
		cfg  Config
		want float64
	}{{OPT175B, 48}, {OPT30B, 43}} {
		ai := c.cfg.LayerFLOPs(sh, false) / c.cfg.LayerMOPs(sh, false, 16, 16)
		if ai < c.want/2.5 || ai > c.want*2.5 {
			t.Errorf("%s decode AI=%.1f, paper reports ≈%.0f", c.cfg.Name, ai, c.want)
		}
	}
}

func TestLayerWeightBytesMonotoneInBits(t *testing.T) {
	cfg := OPT30B
	prev := 0.0
	for _, b := range []int{3, 4, 8, 16} {
		w := cfg.LayerWeightBytes(b)
		if w <= prev {
			t.Errorf("weight bytes not increasing: bits=%d w=%.0f prev=%.0f", b, w, prev)
		}
		prev = w
	}
	// 16-bit weights should be ~2 bytes/param over linear weights.
	lin := 4*float64(cfg.Hidden)*float64(cfg.Hidden) + 2*float64(cfg.Hidden)*float64(cfg.FFN)
	if got := cfg.LayerWeightBytes(16); math.Abs(got-lin*2) > lin*0.01 {
		t.Errorf("FP16 layer weight bytes %.3g, expected ≈%.3g", got, lin*2)
	}
}

func TestKVBytesScalesLinearly(t *testing.T) {
	err := quick.Check(func(b8, s8, kv8 uint8) bool {
		b := int(b8%16) + 1
		s := int(s8)%1024 + 1
		kvBits := []int{8, 16}[kv8%2]
		one := OPT13B.KVBytesPerLayer(b, s, kvBits)
		two := OPT13B.KVBytesPerLayer(2*b, s, kvBits)
		return math.Abs(two-2*one) < 1e-6*one+1
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestFLOPsPositiveAndMonotone(t *testing.T) {
	err := quick.Check(func(b8, s8 uint8) bool {
		b := int(b8%32) + 1
		s := int(s8)%1024 + 2
		sh1 := PhaseShape{Batch: b, Prompt: s}
		sh2 := PhaseShape{Batch: b, Prompt: s + 1}
		f1 := OPT13B.LayerFLOPs(sh1, true)
		f2 := OPT13B.LayerFLOPs(sh2, true)
		return f1 > 0 && f2 > f1
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestDecodeMOPsGrowWithContext(t *testing.T) {
	short := OPT30B.LayerMOPs(PhaseShape{Batch: 8, Context: 128}, false, 16, 16)
	long := OPT30B.LayerMOPs(PhaseShape{Batch: 8, Context: 1024}, false, 16, 16)
	if long <= short {
		t.Errorf("decode MOPs should grow with context: %.0f vs %.0f", short, long)
	}
}

func TestQuantizationReducesMOPs(t *testing.T) {
	sh := PhaseShape{Batch: 8, Context: 512}
	fp16 := OPT30B.LayerMOPs(sh, false, 16, 16)
	int4 := OPT30B.LayerMOPs(sh, false, 4, 16)
	if int4 >= fp16 {
		t.Errorf("4-bit weights should reduce memory traffic: %.0f vs %.0f", int4, fp16)
	}
	// Weight traffic dominates decode at small batch; expect >2x reduction.
	shSmall := PhaseShape{Batch: 1, Context: 128}
	r := OPT30B.LayerMOPs(shSmall, false, 16, 16) / OPT30B.LayerMOPs(shSmall, false, 4, 16)
	if r < 2 {
		t.Errorf("small-batch decode should be ≥2x lighter at 4-bit, got %.2fx", r)
	}
}

func TestEmbedBytesBLOOMHasNoPositionTable(t *testing.T) {
	// Same hidden size: OPT-1.3b vs BLOOM-1b7. BLOOM has bigger vocab but no
	// learned positions; check the position-table term is absent.
	opt := OPT1B3.EmbedParams()
	wantOPT := int64(OPT1B3.VocabSize+OPT1B3.MaxPosEmb)*int64(OPT1B3.Hidden) + 2*int64(OPT1B3.Hidden)
	if opt != wantOPT {
		t.Errorf("OPT embed params = %d, want %d", opt, wantOPT)
	}
	bl := BLOOM1B7.EmbedParams()
	wantBL := int64(BLOOM1B7.VocabSize)*int64(BLOOM1B7.Hidden) + 2*int64(BLOOM1B7.Hidden)
	if bl != wantBL {
		t.Errorf("BLOOM embed params = %d, want %d", bl, wantBL)
	}
}
