#!/usr/bin/env bash
# Full correctness gate: tier-1 verify, the llmpq-vet lint suite, the race
# lane, and a ~60 s fuzz smoke (quantizer, serve decode, journal replay).
# Mirrors `make verify-all`.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build =="
go build ./...
echo "== go vet =="
go vet ./...
echo "== llmpq-vet (domain analyzers + SARIF smoke) =="
sarif=$(mktemp)
go run ./cmd/llmpq-vet -sarif "$sarif" ./...
python3 - "$sarif" <<'EOF'
import json, sys
log = json.load(open(sys.argv[1]))
assert log["version"] == "2.1.0", f"bad SARIF version {log['version']}"
rules = log["runs"][0]["tool"]["driver"]["rules"]
assert len(rules) >= 5, f"only {len(rules)} SARIF rules, want >= 5"
EOF
rm -f "$sarif"
echo "== tests =="
go test ./...
echo "== race lane (pipeline engine / online / simclock / obs / tp / planner search / chaos / failover / dist / journal / serve) =="
go test -race ./internal/runtime/... ./internal/online/... ./internal/simclock/... ./internal/obs/... ./internal/tp/... ./internal/assigner/... ./internal/lp/... ./internal/ilp/... ./internal/chaos/... ./internal/failover/... ./internal/core/retry/... ./internal/dist/... ./internal/journal/... ./internal/serve/...
echo "== observability smoke (llmpq-bench -metrics-out/-trace-out) =="
obsdir=$(mktemp -d)
trap 'rm -rf "$obsdir"' EXIT
go run ./cmd/llmpq-bench -metrics-out "$obsdir/metrics.prom" -trace-out "$obsdir/trace.json"
grep -q 'llmpq_engine_stage_busy_seconds_bucket' "$obsdir/metrics.prom"
grep -q 'llmpq_solver_time_to_plan_seconds' "$obsdir/metrics.prom"
python3 -m json.tool "$obsdir/trace.json" > /dev/null 2>&1 || {
    echo "verify.sh: trace.json is not valid JSON" >&2; exit 1; }
echo "== parallel planner smoke (serial vs -parallel 4 plans must match) =="
go run ./cmd/llmpq-algo -cluster 9 -model-name opt-13b -parallel 1 -o "$obsdir/serial.json" > /dev/null
go run ./cmd/llmpq-algo -cluster 9 -model-name opt-13b -parallel 4 -o "$obsdir/parallel.json" > /dev/null
diff "$obsdir/serial.json" "$obsdir/parallel.json" || {
    echo "verify.sh: parallel planner diverged from the serial plan" >&2; exit 1; }
echo "== chaos smoke (permanent device loss must be reproducible byte-for-byte) =="
go build -o "$obsdir/llmpq-bench" ./cmd/llmpq-bench
mkdir -p "$obsdir/chaos1" "$obsdir/chaos2"
(cd "$obsdir/chaos1" && "$obsdir/llmpq-bench" -chaos-profile perm-loss -chaos-seed 1 \
    -metrics-out metrics.prom -trace-out trace.json > stdout.txt)
(cd "$obsdir/chaos2" && "$obsdir/llmpq-bench" -chaos-profile perm-loss -chaos-seed 1 \
    -metrics-out metrics.prom -trace-out trace.json > stdout.txt)
for f in metrics.prom trace.json stdout.txt; do
    diff "$obsdir/chaos1/$f" "$obsdir/chaos2/$f" || {
        echo "verify.sh: chaos run is not deterministic ($f differs)" >&2; exit 1; }
done
grep -Eq 'llmpq_failover_replans_total [1-9]' "$obsdir/chaos1/metrics.prom" || {
    echo "verify.sh: chaos smoke never replanned (llmpq_failover_replans_total < 1)" >&2; exit 1; }
grep -q 'llmpq_chaos_device_lost_total' "$obsdir/chaos1/metrics.prom"
echo "== distributed control-plane smoke (coordinator + 2 workers over loopback) =="
go build -o "$obsdir/llmpq-dist" ./cmd/llmpq-dist
go run ./cmd/llmpq-algo -cluster 3 -model-name opt-13b -global-bz 8 -s 128 -n 8 \
    -o "$obsdir/dist-strat.json" > /dev/null
"$obsdir/llmpq-dist" -strat-file "$obsdir/dist-strat.json" > "$obsdir/dist-single.txt"
distaddr="127.0.0.1:$((20000 + RANDOM % 20000))"
"$obsdir/llmpq-dist" -role coordinator -strat-file "$obsdir/dist-strat.json" \
    -listen "$distaddr" -workers 2 > "$obsdir/dist-coord.txt" &
coord=$!
"$obsdir/llmpq-dist" -role worker -name w0 -connect "$distaddr" > /dev/null &
"$obsdir/llmpq-dist" -role worker -name w1 -connect "$distaddr" > /dev/null &
wait "$coord"
wait
diff "$obsdir/dist-single.txt" "$obsdir/dist-coord.txt" || {
    echo "verify.sh: multi-process run diverged from the single-process run" >&2; exit 1; }
echo "== distributed failover smoke (SIGKILL a worker mid-decode, expect replan + token conservation) =="
clean_tokens=$(sed -n 's/.*(\([0-9]*\) tokens).*/\1/p' "$obsdir/dist-single.txt")
"$obsdir/llmpq-dist" -role coordinator -strat-file "$obsdir/dist-strat.json" \
    -listen "$distaddr" -workers 2 -heartbeat 50ms -lease 400ms \
    -metrics-out "$obsdir/dist-kill.prom" > "$obsdir/dist-kill.txt" &
coord=$!
"$obsdir/llmpq-dist" -role worker -name w0 -connect "$distaddr" -hold 20ms > /dev/null &
"$obsdir/llmpq-dist" -role worker -name w1 -connect "$distaddr" -hold 20ms > /dev/null &
victim=$!
sleep 1.5
kill -9 "$victim"
wait "$coord"
wait || true
grep -Eq 'llmpq_failover_replans_total [1-9]' "$obsdir/dist-kill.prom" || {
    echo "verify.sh: killed worker never triggered a replan" >&2; exit 1; }
kill_tokens=$(sed -n 's/^total *\([0-9]*\) tokens.*/\1/p' "$obsdir/dist-kill.txt")
[ "$kill_tokens" = "$clean_tokens" ] || {
    echo "verify.sh: failover lost tokens (clean $clean_tokens, after kill ${kill_tokens:-none})" >&2; exit 1; }
echo "== replan warm-start smoke (deterministic worker death; warm and cold replans must byte-match) =="
# -fail-after pins the loss to an evaluation count, so the sim-time loss
# point — and therefore the degraded plan and every sim metric — is a
# pure function of the strategy. The only allowed warm/cold divergence is
# the llmpq_solver_cache_* counter pair itself.
for mode in warm cold; do
    cacheflag=true
    [ "$mode" = cold ] && cacheflag=false
    mkdir -p "$obsdir/replan-$mode"
    (cd "$obsdir/replan-$mode" && "$obsdir/llmpq-dist" -role coordinator \
        -strat-file "$obsdir/dist-strat.json" -listen "$distaddr" -workers 2 \
        -heartbeat 50ms -lease 400ms -solve-cache="$cacheflag" \
        -replan-out replan.json -metrics-out metrics.prom > stdout.txt) &
    coord=$!
    "$obsdir/llmpq-dist" -role worker -name w0 -connect "$distaddr" > /dev/null &
    "$obsdir/llmpq-dist" -role worker -name w1 -connect "$distaddr" -fail-after 20 > /dev/null &
    wait "$coord"
    wait || true   # the fail-after worker exits nonzero by design
done
for f in replan.json stdout.txt; do
    diff "$obsdir/replan-warm/$f" "$obsdir/replan-cold/$f" || {
        echo "verify.sh: warm-start replan diverged from the cold solve ($f differs)" >&2; exit 1; }
done
diff <(grep -v 'llmpq_solver_' "$obsdir/replan-warm/metrics.prom") \
     <(grep -v 'llmpq_solver_' "$obsdir/replan-cold/metrics.prom") || {
    echo "verify.sh: replan sim metrics differ beyond the solver-cache counters" >&2; exit 1; }
grep -Eq 'llmpq_solver_cache_hits_total [1-9]' "$obsdir/replan-warm/metrics.prom" || {
    echo "verify.sh: warm replan never hit the solve cache" >&2; exit 1; }
if grep -q 'llmpq_solver_cache' "$obsdir/replan-cold/metrics.prom"; then
    echo "verify.sh: -solve-cache=false still exported cache counters" >&2; exit 1
fi
echo "== heal smoke (SIGKILL a worker, restart it with -rejoin, expect capacity-restoring replan) =="
# A longer decode gives the full loss→lease-expiry→rejoin→dwell→restore
# sequence room to land mid-run. Clean single-process run fixes the token
# target the healed run must conserve exactly.
go run ./cmd/llmpq-algo -cluster 3 -model-name opt-13b -global-bz 8 -s 128 -n 48 \
    -o "$obsdir/heal-strat.json" > /dev/null
"$obsdir/llmpq-dist" -strat-file "$obsdir/heal-strat.json" > "$obsdir/heal-single.txt"
heal_clean=$(sed -n 's/.*(\([0-9]*\) tokens).*/\1/p' "$obsdir/heal-single.txt")
"$obsdir/llmpq-dist" -role coordinator -strat-file "$obsdir/heal-strat.json" \
    -listen "$distaddr" -workers 2 -heartbeat 50ms -lease 400ms \
    -rejoin -heal-dwell 200ms \
    -metrics-out "$obsdir/heal.prom" -ctrl-metrics-out "$obsdir/heal-ctrl.prom" \
    > "$obsdir/heal.txt" &
coord=$!
"$obsdir/llmpq-dist" -role worker -name w0 -connect "$distaddr" -hold 20ms > /dev/null &
"$obsdir/llmpq-dist" -role worker -name w1 -connect "$distaddr" -hold 20ms > /dev/null &
victim=$!
sleep 0.9
kill -9 "$victim"
# Restart the dead worker under its old name: -rejoin retries through the
# still-live lease, re-admits after expiry, and the dwell-stable lease
# triggers the restore.
"$obsdir/llmpq-dist" -role worker -name w1 -connect "$distaddr" -hold 20ms -rejoin > /dev/null &
wait "$coord"
wait || true   # the SIGKILLed incarnation reaps nonzero by design
grep -Eq 'llmpq_failover_restore_total [1-9]' "$obsdir/heal.prom" || {
    echo "verify.sh: rejoined worker never triggered a capacity-restoring replan" >&2; exit 1; }
grep -Eq 'llmpq_heal_rejoins_total [1-9]' "$obsdir/heal-ctrl.prom" || {
    echo "verify.sh: coordinator never counted the rejoin handshake" >&2; exit 1; }
grep -q 'worker heal' "$obsdir/heal.txt" || {
    echo "verify.sh: healed run never reported the restore" >&2; exit 1; }
heal_tokens=$(sed -n 's/^total *\([0-9]*\) tokens.*/\1/p' "$obsdir/heal.txt")
[ "$heal_tokens" = "$heal_clean" ] || {
    echo "verify.sh: heal lost tokens (clean $heal_clean, after heal ${heal_tokens:-none})" >&2; exit 1; }
echo "== flap smoke (seeded device flap must heal and be reproducible byte-for-byte) =="
for run in 1 2; do
    mkdir -p "$obsdir/flap$run"
    (cd "$obsdir/flap$run" && "$obsdir/llmpq-bench" -chaos-profile flap -chaos-seed 1 \
        -metrics-out metrics.prom -trace-out trace.json > stdout.txt)
done
for f in metrics.prom trace.json stdout.txt; do
    diff "$obsdir/flap1/$f" "$obsdir/flap2/$f" || {
        echo "verify.sh: flap run is not deterministic ($f differs)" >&2; exit 1; }
done
grep -Eq 'llmpq_failover_restore_total [1-9]' "$obsdir/flap1/metrics.prom" || {
    echo "verify.sh: flap profile never restored capacity" >&2; exit 1; }
grep -Eq 'llmpq_heal_device_returns_total [1-9]' "$obsdir/flap1/metrics.prom" || {
    echo "verify.sh: flap profile counted no device return" >&2; exit 1; }
echo "== distributed chaos smoke (seeded conn-drop must be reproducible byte-for-byte) =="
for run in 1 2; do
    mkdir -p "$obsdir/dchaos$run"
    (cd "$obsdir/dchaos$run" && "$obsdir/llmpq-dist" -role coordinator \
        -strat-file "$obsdir/dist-strat.json" -listen "$distaddr" -workers 2 \
        -chaos-profile conn-drop -chaos-seed 1 \
        -metrics-out metrics.prom -trace-out trace.json > stdout.txt) &
    coord=$!
    "$obsdir/llmpq-dist" -role worker -name w0 -connect "$distaddr" > /dev/null &
    "$obsdir/llmpq-dist" -role worker -name w1 -connect "$distaddr" > /dev/null &
    wait "$coord"
    wait
done
for f in metrics.prom trace.json stdout.txt; do
    diff "$obsdir/dchaos1/$f" "$obsdir/dchaos2/$f" || {
        echo "verify.sh: distributed chaos run is not deterministic ($f differs)" >&2; exit 1; }
done
grep -q 'llmpq_dist_injected_conn_drops_total 1' "$obsdir/dchaos1/metrics.prom"
echo "== crash recovery smoke (SIGKILL the coordinator mid-decode; -recover must byte-match) =="
# Reference: a journaled run that never crashes, capturing every artifact
# the recovered run must reproduce byte-for-byte. The stage-call total it
# exports picks the crash point for the second run.
mkdir -p "$obsdir/rec-ref" "$obsdir/rec-crash"
(cd "$obsdir/rec-ref" && "$obsdir/llmpq-dist" -role coordinator \
    -strat-file "$obsdir/dist-strat.json" -listen "$distaddr" -workers 2 \
    -journal-dir jnl -metrics-out metrics.prom -trace-out trace.json > stdout.txt) &
coord=$!
"$obsdir/llmpq-dist" -role worker -name w0 -connect "$distaddr" > /dev/null &
"$obsdir/llmpq-dist" -role worker -name w1 -connect "$distaddr" > /dev/null &
wait "$coord"
wait
calls=$(awk '/^llmpq_dist_stage_calls_total/ { print int($2) }' "$obsdir/rec-ref/metrics.prom")
[ "${calls:-0}" -gt 4 ] || {
    echo "verify.sh: reference run exported no stage-call total" >&2; exit 1; }
# Crash run: the coordinator SIGKILLs itself two evaluations before the
# end — deep in decode, with round watermarks already in the journal.
# The workers outlive the crash on their dial-retry budget.
(cd "$obsdir/rec-crash" && "$obsdir/llmpq-dist" -role coordinator \
    -strat-file "$obsdir/dist-strat.json" -listen "$distaddr" -workers 2 \
    -journal-dir jnl -coord-fail-after "$((calls - 2))" > stdout.txt) &
coord=$!
"$obsdir/llmpq-dist" -role worker -name w0 -connect "$distaddr" > /dev/null &
w0=$!
"$obsdir/llmpq-dist" -role worker -name w1 -connect "$distaddr" > /dev/null &
w1=$!
if wait "$coord"; then
    echo "verify.sh: -coord-fail-after coordinator exited cleanly instead of dying" >&2; exit 1
fi
# Restart on the same address with -recover: the journal replays, both
# workers reattach under their rejoin tokens, stdout.txt is overwritten
# by the recovered (complete) run.
(cd "$obsdir/rec-crash" && "$obsdir/llmpq-dist" -role coordinator \
    -strat-file "$obsdir/dist-strat.json" -listen "$distaddr" -workers 2 \
    -journal-dir jnl -recover -metrics-out metrics.prom -trace-out trace.json \
    -ctrl-metrics-out ctrl.prom > stdout.txt)
wait "$w0" "$w1"
for f in metrics.prom trace.json stdout.txt; do
    diff "$obsdir/rec-ref/$f" "$obsdir/rec-crash/$f" || {
        echo "verify.sh: recovered run diverged from the uninterrupted run ($f differs)" >&2; exit 1; }
done
grep -Eq 'llmpq_journal_replayed_records [1-9]' "$obsdir/rec-crash/ctrl.prom" || {
    echo "verify.sh: recovery replayed no journal records" >&2; exit 1; }
grep -Eq 'llmpq_dist_reattach_total 2' "$obsdir/rec-crash/ctrl.prom" || {
    echo "verify.sh: both workers should reattach under their rejoin tokens" >&2; exit 1; }
echo "== serve smoke (HTTP front door: completion + metrics, sim registry byte-diffable) =="
go build -o "$obsdir/llmpq-serve" ./cmd/llmpq-serve
serveaddr="127.0.0.1:$((20000 + RANDOM % 20000))"
for run in 1 2; do
    mkdir -p "$obsdir/serve$run"
    "$obsdir/llmpq-serve" -listen "$serveaddr" -seed 1 -max-new 32 \
        -sim-metrics-out "$obsdir/serve$run/sim.prom" > "$obsdir/serve$run/stdout.txt" &
    spid=$!
    for _ in $(seq 1 100); do
        curl -sf "http://$serveaddr/healthz" > /dev/null 2>&1 && break
        sleep 0.1
    done
    curl -sf -X POST "http://$serveaddr/v1/completions" \
        -d '{"prompt": "partition the layers across devices", "max_tokens": 8}' \
        > "$obsdir/serve$run/completion.json"
    curl -sf "http://$serveaddr/metrics" > "$obsdir/serve$run/metrics.prom"
    kill -TERM "$spid"
    wait "$spid"
done
python3 -m json.tool "$obsdir/serve1/completion.json" > /dev/null 2>&1 || {
    echo "verify.sh: completion response is not valid JSON" >&2; exit 1; }
grep -q '"finish_reason": *"length"' "$obsdir/serve1/completion.json"
grep -q 'llmpq_serve_http_requests_total' "$obsdir/serve1/metrics.prom" || {
    echo "verify.sh: ctrl registry missing wall-clock HTTP families" >&2; exit 1; }
grep -q 'llmpq_online_completed_total' "$obsdir/serve1/metrics.prom"
diff "$obsdir/serve1/sim.prom" "$obsdir/serve2/sim.prom" || {
    echo "verify.sh: serve sim registry is not deterministic across identical runs" >&2; exit 1; }
grep -q 'llmpq_online_completed_total' "$obsdir/serve1/sim.prom"
if grep -q 'llmpq_serve_' "$obsdir/serve1/sim.prom"; then
    echo "verify.sh: wall-clock llmpq_serve_* families leaked into the sim artifact" >&2; exit 1
fi
echo "== fuzz smoke (Theorem-1 round-trip + group-wise pack + completion decode + journal replay, ~60s) =="
go test -run='^$' -fuzz=FuzzQuantDequantRoundTrip -fuzztime=15s ./internal/quant
go test -run='^$' -fuzz=FuzzGroupwisePack -fuzztime=15s ./internal/quant
go test -run='^$' -fuzz=FuzzCompletionRequest -fuzztime=15s ./internal/serve
go test -run='^$' -fuzz=FuzzJournalReplay -fuzztime=15s ./internal/dist
echo "verify.sh: all lanes green"
