#!/usr/bin/env bash
# Full correctness gate: tier-1 verify, the llmpq-vet lint suite, the race
# lane, and a ~30 s fuzz smoke over the quantizer. Mirrors `make verify-all`.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build =="
go build ./...
echo "== go vet =="
go vet ./...
echo "== llmpq-vet (domain analyzers) =="
go run ./cmd/llmpq-vet ./...
echo "== tests =="
go test ./...
echo "== race lane (pipeline engine / online / simclock) =="
go test -race ./internal/runtime/... ./internal/online/... ./internal/simclock/...
echo "== fuzz smoke (Theorem-1 round-trip + group-wise pack, ~30s) =="
go test -run='^$' -fuzz=FuzzQuantDequantRoundTrip -fuzztime=15s ./internal/quant
go test -run='^$' -fuzz=FuzzGroupwisePack -fuzztime=15s ./internal/quant
echo "verify.sh: all lanes green"
