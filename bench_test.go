// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§6), plus ablations for the design choices called out in
// DESIGN.md §5. Each benchmark regenerates its experiment end to end and
// reports the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation and prints the numbers EXPERIMENTS.md
// records.
package repro

import (
	"testing"
	"time"

	"repro/internal/assigner"
	"repro/internal/baselines"
	"repro/internal/experiments"
	"repro/internal/hardware"
	"repro/internal/indicator"
	"repro/internal/model"
	"repro/internal/runtime"
)

func BenchmarkFig1GPUPortions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				if r.GPUType == "T4" {
					b.ReportMetric(r.Share*100, "t4-fleet-%")
					b.ReportMetric(r.MeanUtil*100, "t4-util-%")
				}
			}
		}
	}
}

func BenchmarkFig3PhaseDecomposition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Fig3()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				if r.Device == "P100" && r.Bits == 16 {
					b.ReportMetric(r.PrefillRatioVsV100, "p100/v100-prefill-x")
					b.ReportMetric(r.DecodeRatioVsV100, "p100/v100-decode-x")
				}
			}
		}
	}
}

func BenchmarkFig4QualityVsBitwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				if r.Model == "opt-1.3b(ref)" && r.Scheme == "mixed4-8" {
					b.ReportMetric(r.PPL, "mixed4-8-ppl")
				}
			}
		}
	}
}

func BenchmarkFig5PrecisionBatch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				if r.Device == "V100" && r.Bits == 16 && r.Batch == 4 {
					b.ReportMetric(r.Prefill*1000, "v100-fp16-prefill-ms")
				}
			}
		}
	}
}

func BenchmarkTable1LayerSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 && len(rows) >= 3 {
			b.ReportMetric(rows[2].PPL-rows[0].PPL, "late-minus-early-ppl")
		}
	}
}

func BenchmarkFig7CostModelFidelity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, res, err := experiments.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			var worst float64
			for _, e := range res.LatErr {
				if e > worst {
					worst = e
				}
			}
			b.ReportMetric(worst*100, "worst-latency-err-%")
		}
	}
}

func BenchmarkTable4Heterogeneous(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, all, err := experiments.Table4()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			avg, max, _ := experiments.AverageSpeedup(all)
			b.ReportMetric(avg, "avg-speedup-x")
			b.ReportMetric(max, "max-speedup-x")
		}
	}
}

func BenchmarkTable5Homogeneous(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, all, err := experiments.Table5()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			avg, _, _ := experiments.AverageSpeedup(all)
			b.ReportMetric(avg, "avg-speedup-x")
		}
	}
}

func BenchmarkTable6Indicator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Table6()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			var hess, variance time.Duration
			for _, r := range rows {
				switch r.Method {
				case "Hessian":
					hess = r.Overhead
				case "LLM-PQ (variance)":
					variance = r.Overhead
				}
			}
			if variance > 0 {
				b.ReportMetric(float64(hess)/float64(variance), "hessian/variance-overhead-x")
			}
		}
	}
}

func BenchmarkTable7ShortPrompts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, all, err := experiments.Table7()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			avg, _, _ := experiments.AverageSpeedup(all)
			b.ReportMetric(avg, "avg-speedup-x")
		}
	}
}

func BenchmarkTable8Optimizer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Table8()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			var heuristic, group1 time.Duration
			for _, r := range rows {
				if r.Cluster == 10 {
					switch r.Strategy {
					case "heuristic":
						heuristic = r.Overhead
					case "group=1":
						group1 = r.Overhead
					}
				}
			}
			if heuristic > 0 {
				b.ReportMetric(float64(group1)/float64(heuristic), "group1/heuristic-solve-x")
			}
		}
	}
}

func BenchmarkFig8ThetaSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			var lo, hi experiments.Fig8Row
			for _, r := range rows {
				if r.Cluster == 9 && r.Theta == 0.01 {
					lo = r
				}
				if r.Cluster == 9 && r.Theta == 10000 {
					hi = r
				}
			}
			b.ReportMetric(lo.PPL-hi.PPL, "ppl-gain-lo-to-hi-theta")
		}
	}
}

func BenchmarkFig9VsAdabits(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			byCluster := map[int]map[string]float64{}
			for _, r := range rows {
				if byCluster[r.Cluster] == nil {
					byCluster[r.Cluster] = map[string]float64{}
				}
				byCluster[r.Cluster][r.Scheme] = r.Throughput
			}
			var sum float64
			var n int
			for _, m := range byCluster {
				if m["adabits"] > 0 {
					sum += m["LLM-PQ"] / m["adabits"]
					n++
				}
			}
			b.ReportMetric(sum/float64(n), "avg-speedup-vs-adabits-x")
		}
	}
}

func BenchmarkTable10SolverOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Table10()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			var total time.Duration
			for _, r := range rows {
				total += r.Solve
			}
			b.ReportMetric(total.Seconds()/float64(len(rows)), "avg-solve-s")
		}
	}
}

// --- Extensions (paper §5 and §7) ---

func BenchmarkExtSchemes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.ExtSchemes()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			var pt4, gw4 float64
			for _, r := range rows {
				if r.Bits == 4 && r.Scheme == "per-tensor" {
					pt4 = r.PPL
				}
				if r.Bits == 4 && r.Scheme == "group-wise/16" {
					gw4 = r.PPL
				}
			}
			b.ReportMetric(pt4-gw4, "groupwise-ppl-recovery")
		}
	}
}

func BenchmarkExtLoader(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.ExtLoader()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 && len(rows) > 3 {
			b.ReportMetric(rows[0].PeakDRAM/rows[3].PeakDRAM, "dram-reduction-x")
		}
	}
}

func BenchmarkExtTP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.ExtTP()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 && len(rows) == 2 {
			b.ReportMetric(rows[1].TokS/rows[1].BaseTokS, "tp-speedup-deep-pipeline-x")
		}
	}
}

func BenchmarkExtOnline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, pts, err := experiments.ExtOnline()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			var hi4, hi8 float64
			for _, p := range pts {
				if p.Arrival == 24 && p.Bits == 4 {
					hi4 = p.Stats.Throughput
				}
				if p.Arrival == 24 && p.Bits == 8 {
					hi8 = p.Stats.Throughput
				}
			}
			if hi8 > 0 {
				b.ReportMetric(hi4/hi8, "int4/int8-highload-x")
			}
		}
	}
}

func BenchmarkExtTrained(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.ExtTrained()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				if r.Scheme == "int8" {
					b.ReportMetric(r.Acc*100, "trained-int8-agreement-%")
				}
			}
		}
	}
}

func BenchmarkExtKVCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.ExtKVCache()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			var fp16, int8 float64
			for _, r := range rows {
				if r.Cluster == 1 && r.KVBits == 16 {
					fp16 = r.TokS
				}
				if r.Cluster == 1 && r.KVBits == 8 {
					int8 = r.TokS
				}
			}
			if fp16 > 0 {
				b.ReportMetric(int8/fp16, "int8kv-speedup-x")
			}
		}
	}
}

// --- Ablations (DESIGN.md §5) ---

func ablationSpec(method assigner.Method) *assigner.Spec {
	cl, _ := hardware.ClusterByID(3)
	cfg, _ := model.ByName("opt-30b")
	return &assigner.Spec{
		Cfg: cfg, Cluster: cl,
		Work:   assigner.Workload{GlobalBatch: 32, Prompt: 512, Generate: 100},
		Bits:   []int{3, 4, 8, 16},
		Omega:  indicator.Synthetic(cfg, []int{3, 4, 8, 16}, 42),
		Theta:  1,
		Method: method,
	}
}

// BenchmarkAblationStructuredVsILP compares the structured DP against the
// generic branch-and-bound MILP on a small instance (the DP's exactness is
// asserted in assigner tests; this reports the speed gap).
func BenchmarkAblationStructuredVsILP(b *testing.B) {
	small := model.Config{Name: "ablation", Family: model.OPT, Hidden: 2048, FFN: 8192,
		Layers: 6, Heads: 16, VocabSize: 50272, MaxPosEmb: 2048, TiedEmbed: true}
	mk := func(m assigner.Method) *assigner.Spec {
		cl, _ := hardware.NewCluster([]string{"T4", "V100"}, []int{1, 1}, hardware.Eth800Gbps, "ablation")
		return &assigner.Spec{
			Cfg: small, Cluster: cl,
			Work:                assigner.Workload{GlobalBatch: 4, Prompt: 128, Generate: 8},
			Bits:                []int{4, 16},
			Omega:               subsetOmega(indicator.Synthetic(small, []int{3, 4, 8, 16}, 7), []int{4, 16}),
			Theta:               0.01,
			Method:              m,
			PrefillMicroBatches: []int{2},
			TimeLimit:           60 * time.Second,
		}
	}
	b.Run("dp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := assigner.Optimize(mk(assigner.MethodDP), nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ilp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := assigner.Optimize(mk(assigner.MethodILP), nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func subsetOmega(o indicator.Omega, bits []int) indicator.Omega {
	out := indicator.Omega{Bits: bits}
	for l := 0; l < o.Layers(); l++ {
		row := make([]float64, len(bits))
		for i, bb := range bits {
			v, _ := o.At(l, bb)
			row[i] = v
		}
		out.Values = append(out.Values, row)
	}
	return out
}

// BenchmarkAblationPhaseAware quantifies the value of modelling both
// phases: the LLM-PQ plan vs the prefill-only PipeEdge partition, executed
// on the same runtime.
func BenchmarkAblationPhaseAware(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := ablationSpec(assigner.MethodDP)
		res, err := assigner.Optimize(s, nil)
		if err != nil {
			b.Fatal(err)
		}
		sPE := ablationSpec(assigner.MethodDP)
		pePlan, _, err := baselines.PipeEdge(sPE, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			engPQ, err := runtime.NewEngine(s, res.Plan, nil)
			if err != nil {
				b.Fatal(err)
			}
			stPQ, err := engPQ.Run()
			if err != nil {
				b.Fatal(err)
			}
			engPE, err := runtime.NewEngine(sPE, pePlan, nil)
			if err != nil {
				b.Fatal(err)
			}
			stPE, err := engPE.Run()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(stPQ.Throughput/stPE.Throughput, "phase-aware-speedup-x")
		}
	}
}

// BenchmarkAblationMicrobatch quantifies Optimization #1: enumerating
// prefill micro-batches vs pinning them to the global batch.
func BenchmarkAblationMicrobatch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		full := ablationSpec(assigner.MethodDP)
		pinned := ablationSpec(assigner.MethodDP)
		pinned.PrefillMicroBatches = []int{pinned.Work.GlobalBatch}
		rFull, err := assigner.Optimize(full, nil)
		if err != nil {
			b.Fatal(err)
		}
		rPinned, err := assigner.Optimize(pinned, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(rPinned.Eval.LatencySec/rFull.Eval.LatencySec, "microbatch-latency-gain-x")
		}
	}
}

// BenchmarkAblationGrouping quantifies Optimization #2 on a 176b-scale
// instance: solve time and objective, group=1 vs group=2.
func BenchmarkAblationGrouping(b *testing.B) {
	mk := func(group int) *assigner.Spec {
		cl, _ := hardware.ClusterByID(8)
		cfg, _ := model.ByName("bloom-176b")
		omega := indicator.Synthetic(cfg, []int{3, 4, 8, 16}, 42)
		return &assigner.Spec{
			Cfg: cfg, Cluster: cl,
			Work:                assigner.Workload{GlobalBatch: 32, Prompt: 512, Generate: 100},
			Bits:                []int{3, 4, 8, 16},
			Omega:               assigner.GroupOmega(omega, group),
			Theta:               10,
			Group:               group,
			Method:              assigner.MethodDP,
			PrefillMicroBatches: []int{1, 2, 4},
		}
	}
	b.Run("group=1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := assigner.Optimize(mk(1), nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("group=2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := assigner.Optimize(mk(2), nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}
