package main

import "testing"

func TestParseDevices(t *testing.T) {
	names, counts, err := parseDevices("T4, V100", "3, 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "T4" || names[1] != "V100" {
		t.Errorf("names %v", names)
	}
	if counts[0] != 3 || counts[1] != 1 {
		t.Errorf("counts %v", counts)
	}
	if _, _, err := parseDevices("", ""); err == nil {
		t.Error("expected empty error")
	}
	if _, _, err := parseDevices("T4,V100", "3"); err == nil {
		t.Error("expected mismatch error")
	}
	if _, _, err := parseDevices("T4", "three"); err == nil {
		t.Error("expected parse error")
	}
}
