// Command llmpq-algo generates an optimized inference execution plan for a
// model on a (possibly heterogeneous) cluster — the paper's plan-generation
// entry point (§5):
//
//	llmpq-algo -model-name opt-30b -device-names T4,V100 -device-numbers 3,1 \
//	    -global-bz 32 -s 512 -n 100 -theta 1 -o strategy.json
//
// or against one of the paper's Table 3 clusters:
//
//	llmpq-algo -cluster 3 -o strategy.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/assigner"
	"repro/internal/core"
)

func main() {
	var (
		modelName = flag.String("model-name", "", "model (opt-13b, opt-30b, opt-66b, bloom-176b, ...)")
		devNames  = flag.String("device-names", "", "comma-separated device types (T4,P100,V100,A100-40G,A800-80G)")
		devNums   = flag.String("device-numbers", "", "comma-separated counts per device type")
		cluster   = flag.Int("cluster", 0, "use a Table-3 cluster (1..11) instead of device lists")
		inter     = flag.String("interconnect", "eth800", "inter-node link: nvlink | eth800 | eth100")
		globalBZ  = flag.Int("global-bz", 32, "global batch size")
		s         = flag.Int("s", 512, "padded prompt length")
		n         = flag.Int("n", 100, "tokens generated per request")
		theta     = flag.Float64("theta", 1, "quality scalar θ (larger = favour model quality)")
		group     = flag.Int("group", 1, "layer grouping (Optimization #2)")
		method    = flag.String("method", "dp", "solver: dp | ilp | heuristic | adabits")
		limit     = flag.Duration("time-limit", 60*time.Second, "ILP time limit")
		omega     = flag.String("omega-file", "", "JSON sensitivity table (default: synthetic)")
		kvBits    = flag.Int("kv-bits", 16, "KV-cache precision: 16 (FP16) or 8 (INT8 KV, extension)")
		out       = flag.String("o", "strategy.json", "output strategy file")
		serve     = flag.Bool("serve", false, "also execute the plan on the simulated runtime")
		parallel  = flag.Int("parallel", 0, "planner search workers (0 = all CPUs); any value yields the same plan")
	)
	flag.Parse()

	req := core.Request{
		ModelName: *modelName, ClusterID: *cluster, Interconnect: *inter,
		GlobalBatch: *globalBZ, PromptLen: *s, Generate: *n,
		Theta: *theta, Group: *group, TimeLimit: *limit, OmegaFile: *omega,
		KVBits: *kvBits, Parallelism: *parallel,
	}
	switch *method {
	case "dp":
		req.Method = assigner.MethodDP
	case "ilp":
		req.Method = assigner.MethodILP
	case "heuristic":
		req.Method = assigner.MethodHeuristic
	case "adabits":
		req.Method = assigner.MethodAdabits
	default:
		fatalf("unknown method %q", *method)
	}
	if *cluster == 0 {
		names, nums, err := parseDevices(*devNames, *devNums)
		if err != nil {
			fatalf("%v", err)
		}
		req.DeviceNames, req.DeviceNumbers = names, nums
	}

	spec, res, err := core.Plan(req)
	if err != nil {
		fatalf("planning failed: %v", err)
	}
	p := res.Plan
	fmt.Printf("model      %s on %s (%d devices)\n", spec.Cfg.Name, spec.Cluster.Name, spec.Cluster.NumDevices())
	fmt.Printf("solve      %v (%d order/micro-batch combinations)\n", res.Solve, res.Explored)
	fmt.Printf("micro-batch prefill=%d decode=%d\n", p.PrefillMB, p.DecodeMB)
	fmt.Printf("objective  %.4f  (latency %.2fs + θ·ω %.4f)\n", res.Eval.Objective, res.Eval.LatencySec, spec.Theta*res.Eval.OmegaSum)
	fmt.Print(p.Describe(spec, &res.Eval))
	if ppl, err := core.PredictPPL(spec, p); err == nil {
		fmt.Printf("predicted PPL %.2f\n", ppl)
	} else {
		fmt.Fprintf(os.Stderr, "llmpq-algo: PPL prediction unavailable: %v\n", err)
	}
	if err := core.SaveStrategy(*out, core.Strategy{Request: req, Plan: p}); err != nil {
		fatalf("write %s: %v", *out, err)
	}
	fmt.Printf("strategy written to %s\n", *out)

	if *serve {
		st, err := core.Serve(spec, p)
		if err != nil {
			fatalf("serving failed: %v", err)
		}
		fmt.Printf("simulated: latency %.2fs, throughput %.2f token/s, %d events\n",
			st.LatencySec, st.Throughput, st.Events)
	}
}

func parseDevices(names, nums string) ([]string, []int, error) {
	if names == "" || nums == "" {
		return nil, nil, fmt.Errorf("need -device-names and -device-numbers (or -cluster)")
	}
	ns := strings.Split(names, ",")
	cs := strings.Split(nums, ",")
	if len(ns) != len(cs) {
		return nil, nil, fmt.Errorf("%d device names but %d counts", len(ns), len(cs))
	}
	counts := make([]int, len(cs))
	for i, c := range cs {
		v, err := strconv.Atoi(strings.TrimSpace(c))
		if err != nil {
			return nil, nil, fmt.Errorf("bad count %q: %v", c, err)
		}
		counts[i] = v
	}
	for i := range ns {
		ns[i] = strings.TrimSpace(ns[i])
	}
	return ns, counts, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "llmpq-algo: "+format+"\n", args...)
	os.Exit(1)
}
