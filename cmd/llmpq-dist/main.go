// Command llmpq-dist executes a strategy file produced by llmpq-algo on
// the distributed pipeline runtime — the paper's launch entry point (§5):
//
//	llmpq-dist -strat-file strategy.json
//
// By default the run is the single-process deterministic cluster
// simulation (DESIGN.md §3): master engine, per-stage workers,
// asynchronous stage-to-stage transfers and KV-cache reservation, with
// OOM detection at model-load time.
//
// With -role the same strategy runs as a real multi-process control
// plane over TCP (DESIGN.md §11): one coordinator owning the
// deterministic event loop plus per-stage worker processes evaluating
// stage times remotely, with heartbeat/lease membership, per-round
// deadlines, reconnect-with-backoff, and — on permanent worker loss —
// an automatic replan-and-resume identical to the in-process failover
// path:
//
//	llmpq-dist -role coordinator -strat-file strategy.json -listen :9380 -workers 2
//	llmpq-dist -role worker -name w0 -connect 127.0.0.1:9380
//	llmpq-dist -role worker -name w1 -connect 127.0.0.1:9380
//
// With -journal-dir the coordinator additionally appends a durable
// CRC-framed journal of every plan/membership/progress transition;
// after a crash (SIGKILL included — see -coord-fail-after and the
// coord-crash chaos profile), restarting with -recover on the same
// address replays the journal, reattaches workers by rejoin token, and
// resumes with artifacts byte-identical to an uninterrupted run
// (DESIGN.md §14).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/assigner"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/core/retry"
	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/runtime"
)

func main() {
	var (
		role       = flag.String("role", "single", "single | coordinator | worker")
		stratFile  = flag.String("strat-file", "strategy.json", "strategy file from llmpq-algo")
		verbose    = flag.Bool("v", false, "print per-stage utilization (single) or control-plane events (coordinator/worker)")
		gantt      = flag.Bool("gantt", false, "render the per-stage execution timeline (single role)")
		metricsOut = flag.String("metrics-out", "", "write a Prometheus-style metrics dump of the run here")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace_event JSON of the run here")

		// Coordinator role.
		listen         = flag.String("listen", "127.0.0.1:9380", "coordinator bind address")
		workers        = flag.Int("workers", 2, "worker count the coordinator waits for")
		heartbeat      = flag.Duration("heartbeat", 500*time.Millisecond, "worker heartbeat interval")
		lease          = flag.Duration("lease", 2*time.Second, "silence after which a worker is declared lost")
		deadline       = flag.Duration("deadline", 10*time.Second, "per-round remote evaluation deadline")
		chaosProfile   = flag.String("chaos-profile", "", "inject a seeded fault profile (conn-drop | partition | net-delay | coord-crash)")
		chaosSeed      = flag.Int64("chaos-seed", 1, "seed for -chaos-profile")
		chaosHorizon   = flag.Float64("chaos-horizon", 5.0, "wall-clock horizon in seconds the profile places faults in")
		solveCache     = flag.Bool("solve-cache", true, "memoize solver tables so a lease-expiry replan warm-starts; the degraded plan is byte-identical either way")
		replanOut      = flag.String("replan-out", "", "write the post-replan degraded plan JSON here (empty when the run never replanned)")
		journalDir     = flag.String("journal-dir", "", "append a durable CRC-framed journal of plan/membership/progress transitions under this directory")
		recoverRun     = flag.Bool("recover", false, "replay the journal in -journal-dir and resume the crashed run instead of starting fresh")
		coordFailAfter = flag.Int("coord-fail-after", 0, "SIGKILL the coordinator process after this many completed stage evaluations (crash-recovery demos; 0 = never)")
		ctrlMetricsOut = flag.String("ctrl-metrics-out", "", "write the wall-clock control-plane metrics dump here (journal/reattach/lease counters)")

		// Heal (both roles): the coordinator opens the rejoin door, the
		// worker flags its hellos as heal-capable rejoins.
		rejoin    = flag.Bool("rejoin", false, "coordinator: re-admit a lost worker that rejoins mid-run and replan capacity back; worker: present the name as a heal-capable rejoin after a restart")
		healDwell = flag.Duration("heal-dwell", 0, "how long a rejoined worker's lease must hold before the capacity-restoring replan fires (0 = the lease)")
		flapTol   = flag.Int("flap-tolerance", 0, "lease losses per worker before it is quarantined instead of healed (0 = default 2)")

		// Worker role.
		connect   = flag.String("connect", "127.0.0.1:9380", "coordinator address to join")
		name      = flag.String("name", "", "stable worker name (required for -role worker)")
		hold      = flag.Duration("hold", 0, "artificial wall delay per stage evaluation (paces demos)")
		failAfter = flag.Int("fail-after", 0, "die after this many evaluations (failover demos; 0 = never)")
	)
	flag.Parse()

	switch *role {
	case "single":
		runSingle(*stratFile, *verbose, *gantt, *metricsOut, *traceOut)
	case "coordinator":
		runCoordinator(coordOpts{
			stratFile: *stratFile, listen: *listen, workers: *workers,
			heartbeat: *heartbeat, lease: *lease, deadline: *deadline,
			chaosProfile: *chaosProfile, chaosSeed: *chaosSeed, chaosHorizon: *chaosHorizon,
			verbose: *verbose, metricsOut: *metricsOut, traceOut: *traceOut,
			solveCache: *solveCache, replanOut: *replanOut,
			journalDir: *journalDir, recover: *recoverRun,
			coordFailAfter: *coordFailAfter, ctrlMetricsOut: *ctrlMetricsOut,
			rejoin: *rejoin, healDwell: *healDwell, flapTolerance: *flapTol,
		})
	case "worker":
		runWorker(*name, *connect, *hold, *failAfter, *rejoin, *verbose)
	default:
		fatalf("unknown -role %q (want single, coordinator, or worker)", *role)
	}
}

// loadStrategy rebuilds the spec and validates the plan against it.
func loadStrategy(path string) (*assigner.Spec, *assigner.Plan) {
	strat, err := core.LoadStrategy(path)
	if err != nil {
		fatalf("%v", err)
	}
	spec, err := core.BuildSpec(strat.Request)
	if err != nil {
		fatalf("rebuild spec: %v", err)
	}
	if err := strat.Plan.Validate(spec); err != nil {
		fatalf("strategy does not match its cluster/model: %v", err)
	}
	return spec, strat.Plan
}

// printSummary emits the shared result header — identical between the
// single-process engine and a clean coordinated run, so outputs diff.
func printSummary(spec *assigner.Spec, st runtime.Stats) {
	fmt.Printf("model        %s on %s\n", spec.Cfg.Name, spec.Cluster.Name)
	fmt.Printf("workload     batch=%d prompt=%d generate=%d\n",
		spec.Work.GlobalBatch, spec.Work.Prompt, spec.Work.Generate)
	fmt.Printf("latency      %.2f s (prefill %.2f s)\n", st.LatencySec, st.PrefillSec)
	fmt.Printf("throughput   %.2f token/s (%d tokens)\n", st.Throughput, st.TokensOut)
}

func runSingle(stratFile string, verbose, gantt bool, metricsOut, traceOut string) {
	spec, plan := loadStrategy(stratFile)
	eng, err := runtime.NewEngine(spec, plan, nil)
	if err != nil {
		fatalf("%v", err)
	}
	eng.Trace = gantt
	var reg *obs.Registry
	var rec *obs.SpanRecorder
	if metricsOut != "" {
		reg = obs.NewRegistry()
		eng.Obs = reg
	}
	if traceOut != "" {
		rec = obs.NewSpanRecorder()
		eng.Spans = rec
	}
	st, err := eng.Run()
	var oom *runtime.OOMError
	if errors.As(err, &oom) {
		fatalf("out of memory: %v", oom)
	}
	if err != nil {
		fatalf("serving failed: %v", err)
	}
	printSummary(spec, st)
	writeArtifacts(reg, rec, metricsOut, traceOut)
	if verbose {
		for j := range st.StageBusy {
			fmt.Printf("stage %d      busy %.2fs (%.0f%%), reserved %.1f GB\n",
				j, st.StageBusy[j], st.Utilization[j]*100, st.StageMemGB[j])
		}
		fmt.Printf("events       %d\n", st.Events)
	}
	if gantt {
		out, err := runtime.RenderGantt(st.Trace, plan.NumStages(), st.LatencySec, 100)
		if err != nil {
			fatalf("gantt: %v", err)
		}
		fmt.Print(out)
	}
}

// coordOpts carries the coordinator role's flag surface.
type coordOpts struct {
	stratFile, listen          string
	workers                    int
	heartbeat, lease, deadline time.Duration
	chaosProfile               string
	chaosSeed                  int64
	chaosHorizon               float64
	verbose                    bool
	metricsOut, traceOut       string
	solveCache                 bool
	replanOut                  string
	journalDir                 string
	recover                    bool
	coordFailAfter             int
	ctrlMetricsOut             string
	rejoin                     bool
	healDwell                  time.Duration
	flapTolerance              int
}

// strategyHash fingerprints the raw strategy file so a recovery cannot
// silently resume under a different strategy.
func strategyHash(path string) string {
	buf, err := os.ReadFile(path)
	if err != nil {
		// loadStrategy already surfaced the real error on the fatal path.
		return ""
	}
	h := fnv.New64a()
	_, _ = h.Write(buf) // hash.Hash writes never fail
	return fmt.Sprintf("fnv1a:%016x", h.Sum64())
}

func runCoordinator(o coordOpts) {
	spec, plan := loadStrategy(o.stratFile)
	if o.solveCache {
		spec.Cache = assigner.NewSolveCache()
	}
	ln, err := net.Listen("tcp", o.listen)
	if err != nil {
		fatalf("listen: %v", err)
	}
	var reg *obs.Registry
	var rec *obs.SpanRecorder
	if o.metricsOut != "" {
		reg = obs.NewRegistry()
	}
	if o.traceOut != "" {
		rec = obs.NewSpanRecorder()
	}
	ctrl := obs.NewRegistry()
	failAfter := o.coordFailAfter
	if o.chaosProfile != "" {
		sched, err := chaos.New(o.chaosProfile, o.chaosSeed, o.workers, o.chaosHorizon)
		if err != nil {
			fatalf("%v", err)
		}
		nf := sched.NetFaults()
		crashAfter, hasCrash := sched.CoordCrashAfter()
		extra := len(sched.Faults) - len(nf)
		if hasCrash {
			extra--
		}
		if extra > 0 {
			fatalf("profile %s contains faults the distributed runtime cannot inject (want conn-drop, partition, net-delay, coord-crash)", o.chaosProfile)
		}
		if len(nf) > 0 {
			ln = dist.NewFaultListener(ln, sched, reg, ctrl)
		}
		if hasCrash && failAfter == 0 {
			failAfter = crashAfter
		}
		fmt.Printf("chaos        profile %s seed %d (%d faults)\n", o.chaosProfile, o.chaosSeed, len(sched.Faults))
	}
	var die func()
	if failAfter > 0 {
		die = func() {
			// Real abrupt death: no farewells, no flushes, no exit hooks —
			// exactly what the -recover path must tolerate.
			_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
			select {}
		}
	}
	logf := func(string, ...any) {}
	if o.verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "llmpq-dist: "+format+"\n", args...)
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := dist.Serve(ctx, dist.Config{
		Listener: ln, Workers: o.workers, Spec: spec, Plan: plan,
		Heartbeat: o.heartbeat, Lease: o.lease, RoundDeadline: o.deadline,
		JournalDir: o.journalDir, Recover: o.recover,
		Rejoin: o.rejoin, HealDwell: o.healDwell, FlapTolerance: o.flapTolerance,
		StrategyHash:   strategyHash(o.stratFile),
		CoordFailAfter: failAfter, Die: die,
		Obs: reg, CtrlObs: ctrl, Spans: rec, Logf: logf,
	})
	if err != nil {
		fatalf("coordinated serving failed: %v", err)
	}
	if !res.Replanned {
		printSummary(spec, res.First)
	} else {
		fmt.Printf("model        %s on %s\n", spec.Cfg.Name, spec.Cluster.Name)
		fmt.Printf("workload     batch=%d prompt=%d generate=%d\n",
			spec.Work.GlobalBatch, spec.Work.Prompt, spec.Work.Generate)
		fmt.Printf("worker loss  %s (stage %d, %s) at %.4f s, watermark %d tokens/request\n",
			res.LostWorker, res.Lost.Stage, res.LostDevice, res.Lost.AtSec, res.Lost.Watermark)
		fmt.Printf("replanned    %d stages on survivors, %d layers migrated (%.0f MB, %.4f s)\n",
			res.DegradedPlan.NumStages(), res.MovedLayers, res.Migration.TotalBytes/1e6, res.Migration.TransferSec)
		if res.Restored {
			fmt.Printf("worker heal  %s rejoined; restore halt at %.4f s, watermark %d tokens/request\n",
				strings.Join(res.HealedWorkers, ","), res.RestoreHalt.AtSec, res.RestoreHalt.Watermark)
			fmt.Printf("restored     %d stages on the full fleet, %d layers migrated back (%.0f MB, %.4f s)\n",
				res.RestoredPlan.NumStages(), res.RestoreMovedLayers,
				res.RestoreMigration.TotalBytes/1e6, res.RestoreMigration.TransferSec)
		}
		fmt.Printf("total        %d tokens in %.4f s\n", res.TotalTokens, res.TotalLatencySec)
		if o.replanOut != "" {
			// The degraded plan is a pure function of (strategy, lost
			// worker), so this artifact byte-diffs across runs — warm or
			// cold — under a deterministic loss point (-fail-after).
			buf, err := json.MarshalIndent(res.DegradedPlan, "", "  ")
			if err != nil {
				fatalf("encode degraded plan: %v", err)
			}
			if err := os.WriteFile(o.replanOut, append(buf, '\n'), 0o644); err != nil {
				fatalf("write degraded plan: %v", err)
			}
			fmt.Printf("replan plan  %s\n", o.replanOut)
		}
	}
	writeArtifacts(reg, rec, o.metricsOut, o.traceOut)
	if o.ctrlMetricsOut != "" {
		if err := obs.WriteArtifact(o.ctrlMetricsOut, ctrl.WriteText); err != nil {
			fatalf("write ctrl metrics: %v", err)
		}
		// Stderr, not stdout: stdout must stay byte-identical between a
		// recovered run and one that never crashed, and the ctrl dump is
		// wall-clock data by definition.
		fmt.Fprintf(os.Stderr, "llmpq-dist: ctrl metrics %s\n", o.ctrlMetricsOut)
	}
}

func runWorker(name, connect string, hold time.Duration, failAfter int, rejoin, verbose bool) {
	if name == "" {
		fatalf("-role worker requires -name")
	}
	logf := func(string, ...any) {}
	if verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "llmpq-dist: "+format+"\n", args...)
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := dist.RunWorker(ctx, dist.WorkerConfig{
		Name: name, Connect: connect, Hold: hold, FailAfterCalls: failAfter, Rejoin: rejoin,
		// Patient dial budget (~1 min) so workers may be launched before
		// the coordinator binds its port.
		Retry:     retry.Policy{MaxAttempts: 60, BaseDelaySec: 0.1, Factor: 1.5, MaxDelaySec: 2, JitterFrac: 0.2},
		RetrySeed: int64(len(name)) + 1, Logf: logf,
	})
	if err != nil {
		fatalf("worker %s: %v", name, err)
	}
	fmt.Printf("worker %s    done\n", name)
}

// writeArtifacts streams the metrics and trace exports when requested.
func writeArtifacts(reg *obs.Registry, rec *obs.SpanRecorder, metricsOut, traceOut string) {
	if reg != nil {
		if err := obs.WriteArtifact(metricsOut, reg.WriteText); err != nil {
			fatalf("write metrics: %v", err)
		}
		fmt.Printf("metrics      %s\n", metricsOut)
	}
	if rec != nil {
		if err := obs.WriteArtifact(traceOut, rec.WriteChromeTrace); err != nil {
			fatalf("write trace: %v", err)
		}
		fmt.Printf("trace        %s (%d spans, load in chrome://tracing)\n", traceOut, rec.Len())
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "llmpq-dist: "+format+"\n", args...)
	os.Exit(1)
}
