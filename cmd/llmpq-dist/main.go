// Command llmpq-dist executes a strategy file produced by llmpq-algo on
// the distributed pipeline runtime — the paper's launch entry point (§5):
//
//	llmpq-dist -strat-file strategy.json
//
// The runtime is the deterministic cluster simulation (DESIGN.md §3):
// master engine, per-stage workers, asynchronous stage-to-stage transfers
// and KV-cache reservation, with OOM detection at model-load time.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/runtime"
)

// writeArtifact creates path and streams one export into it.
func writeArtifact(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := write(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

func main() {
	var (
		stratFile  = flag.String("strat-file", "strategy.json", "strategy file from llmpq-algo")
		verbose    = flag.Bool("v", false, "print per-stage utilization")
		gantt      = flag.Bool("gantt", false, "render the per-stage execution timeline")
		metricsOut = flag.String("metrics-out", "", "write a Prometheus-style metrics dump of the run here")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace_event JSON of the run here")
	)
	flag.Parse()

	strat, err := core.LoadStrategy(*stratFile)
	if err != nil {
		fatalf("%v", err)
	}
	spec, err := core.BuildSpec(strat.Request)
	if err != nil {
		fatalf("rebuild spec: %v", err)
	}
	if err := strat.Plan.Validate(spec); err != nil {
		fatalf("strategy does not match its cluster/model: %v", err)
	}
	eng, err := runtime.NewEngine(spec, strat.Plan, nil)
	if err != nil {
		fatalf("%v", err)
	}
	eng.Trace = *gantt
	var reg *obs.Registry
	var rec *obs.SpanRecorder
	if *metricsOut != "" {
		reg = obs.NewRegistry()
		eng.Obs = reg
	}
	if *traceOut != "" {
		rec = obs.NewSpanRecorder()
		eng.Spans = rec
	}
	st, err := eng.Run()
	var oom *runtime.OOMError
	if errors.As(err, &oom) {
		fatalf("out of memory: %v", oom)
	}
	if err != nil {
		fatalf("serving failed: %v", err)
	}
	fmt.Printf("model        %s on %s\n", spec.Cfg.Name, spec.Cluster.Name)
	fmt.Printf("workload     batch=%d prompt=%d generate=%d\n",
		spec.Work.GlobalBatch, spec.Work.Prompt, spec.Work.Generate)
	fmt.Printf("latency      %.2f s (prefill %.2f s)\n", st.LatencySec, st.PrefillSec)
	fmt.Printf("throughput   %.2f token/s (%d tokens)\n", st.Throughput, st.TokensOut)
	if reg != nil {
		if err := writeArtifact(*metricsOut, func(f *os.File) error { return reg.WriteText(f) }); err != nil {
			fatalf("write metrics: %v", err)
		}
		fmt.Printf("metrics      %s\n", *metricsOut)
	}
	if rec != nil {
		if err := writeArtifact(*traceOut, func(f *os.File) error { return rec.WriteChromeTrace(f) }); err != nil {
			fatalf("write trace: %v", err)
		}
		fmt.Printf("trace        %s (%d spans, load in chrome://tracing)\n", *traceOut, rec.Len())
	}
	if *verbose {
		for j := range st.StageBusy {
			fmt.Printf("stage %d      busy %.2fs (%.0f%%), reserved %.1f GB\n",
				j, st.StageBusy[j], st.Utilization[j]*100, st.StageMemGB[j])
		}
		fmt.Printf("events       %d\n", st.Events)
	}
	if *gantt {
		out, err := runtime.RenderGantt(st.Trace, strat.Plan.NumStages(), st.LatencySec, 100)
		if err != nil {
			fatalf("gantt: %v", err)
		}
		fmt.Print(out)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "llmpq-dist: "+format+"\n", args...)
	os.Exit(1)
}
