// Command llmpq-ref trains, evaluates, and runs the pure-Go reference
// transformer — the real-arithmetic substrate behind the repo's quality
// numbers:
//
//	llmpq-ref train -steps 200 -o model.ckpt      # backprop on a Markov corpus
//	llmpq-ref eval -model model.ckpt -bits 4      # quantized quality of a checkpoint
//	llmpq-ref generate -model model.ckpt -n 24    # greedy generation
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/nn"
	"repro/internal/quant"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "train":
		cmdTrain(os.Args[2:])
	case "eval":
		cmdEval(os.Args[2:])
	case "generate":
		cmdGenerate(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: llmpq-ref <train|eval|generate> [flags]")
	os.Exit(2)
}

var refCfg = nn.Config{Vocab: 48, Hidden: 32, FFN: 128, Layers: 4, Heads: 4, MaxSeq: 48, SensitivitySlope: 1}

func cmdTrain(args []string) {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	steps := fs.Int("steps", 200, "Adam steps (8 fresh sequences each)")
	lr := fs.Float64("lr", 3e-3, "learning rate")
	seed := fs.Int64("seed", 42, "model + corpus seed")
	out := fs.String("o", "model.ckpt", "checkpoint output")
	if err := fs.Parse(args); err != nil {
		fatalf("parse flags: %v", err)
	}

	m, err := nn.New(refCfg, *seed)
	if err != nil {
		fatalf("%v", err)
	}
	tr, err := nn.NewTrainer(m, *lr)
	if err != nil {
		fatalf("%v", err)
	}
	corpus := nn.MarkovCorpus(refCfg.Vocab, *steps*8+8, refCfg.MaxSeq/2, *seed+1)
	start := time.Now()
	var loss float64
	for s := 0; s < *steps; s++ {
		loss, err = tr.Step(corpus[s*8 : (s+1)*8])
		if err != nil {
			fatalf("step %d: %v", s, err)
		}
		if s%50 == 0 || s == *steps-1 {
			fmt.Printf("step %4d  loss %.4f\n", s, loss)
		}
	}
	var heldCE float64
	for _, seq := range corpus[*steps*8:] {
		ce, err := m.CrossEntropy(seq)
		if err != nil {
			fatalf("%v", err)
		}
		heldCE += ce
	}
	heldCE /= 8
	fmt.Printf("trained %d steps in %v; held-out CE %.4f (chance %.4f)\n",
		*steps, time.Since(start).Round(time.Millisecond), heldCE, lnf(refCfg.Vocab))
	if err := m.Save(*out); err != nil {
		fatalf("save: %v", err)
	}
	fmt.Printf("checkpoint written to %s\n", *out)
}

func cmdEval(args []string) {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	path := fs.String("model", "model.ckpt", "checkpoint to evaluate")
	bits := fs.Int("bits", 16, "uniform weight precision (3/4/8/16)")
	scheme := fs.String("scheme", "per-tensor", "per-tensor | per-channel | group-wise")
	group := fs.Int("group", 16, "group size for group-wise")
	seed := fs.Int64("seed", 42, "evaluation corpus seed")
	if err := fs.Parse(args); err != nil {
		fatalf("parse flags: %v", err)
	}

	m, err := nn.Load(*path)
	if err != nil {
		fatalf("%v", err)
	}
	sc, ok := map[string]quant.Scheme{"per-tensor": quant.PerTensor, "per-channel": quant.PerChannel, "group-wise": quant.GroupWise}[*scheme]
	if !ok {
		fatalf("unknown scheme %q (per-tensor|per-channel|group-wise)", *scheme)
	}
	if *bits != 16 {
		for i := range m.Layers {
			if err := m.SetLayerScheme(i, *bits, sc, *group, quant.Deterministic, nil); err != nil {
				fatalf("%v", err)
			}
		}
	}
	eval := nn.MarkovCorpus(m.Cfg.Vocab, 8, m.Cfg.MaxSeq/2, *seed+1)
	var total float64
	for _, seq := range eval {
		ce, err := m.CrossEntropy(seq)
		if err != nil {
			fatalf("%v", err)
		}
		total += ce
	}
	ce := total / float64(len(eval))
	fmt.Printf("model %s @ %d-bit (%s): CE %.4f, PPL %.3f\n", *path, *bits, *scheme, ce, exp(ce))
}

func cmdGenerate(args []string) {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	path := fs.String("model", "model.ckpt", "checkpoint")
	n := fs.Int("n", 24, "tokens to generate")
	if err := fs.Parse(args); err != nil {
		fatalf("parse flags: %v", err)
	}

	m, err := nn.Load(*path)
	if err != nil {
		fatalf("%v", err)
	}
	prompt := []int{1, 2, 3}
	cache := m.NewCache()
	logits, err := m.Forward(prompt, cache)
	if err != nil {
		fatalf("%v", err)
	}
	seq := append([]int(nil), prompt...)
	for i := 0; i < *n && len(seq) < m.Cfg.MaxSeq; i++ {
		row := logits.Row(logits.Rows - 1)
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		seq = append(seq, best)
		logits, err = m.Forward([]int{best}, cache)
		if err != nil {
			fatalf("%v", err)
		}
	}
	fmt.Printf("prompt %v → %v\n", prompt, seq[len(prompt):])
}

func lnf(v int) float64 { return math.Log(float64(v)) }

func exp(x float64) float64 { return math.Exp(x) }

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "llmpq-ref: "+format+"\n", args...)
	os.Exit(1)
}
