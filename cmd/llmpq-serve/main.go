// Command llmpq-serve is the HTTP serving front door (DESIGN.md §12):
// an OpenAI-compatible REST gateway over the online continuous-batching
// simulator. Concurrent POST /v1/completions requests are admitted into
// one shared batch, stream their tokens over SSE, are shed with 429 +
// Retry-After when the admission queue sits at the ShedDepth watermark,
// and drain gracefully on SIGINT/SIGTERM — new work is refused with 503
// while in-flight requests run to completion.
//
//	llmpq-serve -listen 127.0.0.1:8080 -model opt-13b -gpu A100-40G -bits 8
//	curl -s http://127.0.0.1:8080/v1/completions \
//	  -d '{"prompt": "partition the layers", "max_tokens": 8}'
//
// Observability follows the two-registry split: GET /metrics/sim serves
// only the deterministic simulation families (byte-identical across two
// identically-seeded runs with the same request sequence), while
// GET /metrics adds the wall-clock HTTP families on top for scrapers.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/online"
	"repro/internal/serve"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:8080", "bind address")
		modelName = flag.String("model", "opt-13b", "model to serve")
		gpuName   = flag.String("gpu", "A100-40G", "device type hosting the model")
		bits      = flag.Int("bits", 8, "weight precision (16, 8, 4, or 3)")
		maxBatch  = flag.Int("max-batch", 16, "continuous-batching admission cap")
		shedDepth = flag.Int("shed-depth", 64, "waiting-queue watermark; at or past it new requests get 429 (0 = never shed)")
		downshift = flag.Bool("downshift", false, "drop weight precision under sustained KV pressure")
		upshift   = flag.Bool("upshift", false, "climb the precision ladder back up once KV pressure clears (requires -downshift)")
		maxNew    = flag.Int("max-new", 256, "per-request max_tokens cap and default")
		seed      = flag.Int64("seed", 1, "simulation seed (fixes the deterministic artifact)")
		stepHold  = flag.Duration("step-hold", time.Millisecond, "wall pause per decode step (paces streams, widens the batching window)")
		drainWait = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain bound after SIGTERM (0 = wait forever)")
		simOut    = flag.String("sim-metrics-out", "", "write the sim registry here after drain (byte-diffable)")
		ctrlOut   = flag.String("ctrl-metrics-out", "", "write the ctrl registry here after drain (wall-clock)")
		verbose   = flag.Bool("v", false, "log admissions and lifecycle events")
	)
	flag.Parse()

	m, err := model.ByName(*modelName)
	if err != nil {
		fatalf("%v", err)
	}
	gpu, err := hardware.GPUByName(*gpuName)
	if err != nil {
		fatalf("%v", err)
	}
	opts := serve.Options{
		Engine: online.Config{
			GPU: gpu, Model: m, Bits: *bits,
			MaxNew: *maxNew, MaxBatch: *maxBatch, ShedDepth: *shedDepth,
			Downshift: *downshift, Upshift: *upshift, Seed: *seed,
		},
		Sim:       obs.NewRegistry(),
		Ctrl:      obs.NewRegistry(),
		StepHold:  *stepHold,
		RetrySeed: *seed,
	}
	if *verbose {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	srv, err := serve.New(opts)
	if err != nil {
		fatalf("%v", err)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatalf("%v", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Printf("llmpq-serve: %s bits=%d on %s, listening on %s\n",
		m.Name, *bits, gpu.Name, ln.Addr())

	serveErr := srv.Serve(ctx, ln, *drainWait)

	st := srv.EngineStats()
	tier, healing := srv.Health()
	fmt.Printf("llmpq-serve: drained: completed=%d shed=%d downshifts=%d upshifts=%d final_bits=%d degradation_tier=%d healing=%v generated_tok=%d\n",
		st.Completed, st.Shed, st.Downshifts, st.Upshifts, st.FinalBits, tier, healing, st.GeneratedTok)
	if *simOut != "" {
		if err := obs.WriteArtifact(*simOut, srv.SimRegistry().WriteText); err != nil {
			fatalf("write %s: %v", *simOut, err)
		}
	}
	if *ctrlOut != "" {
		if err := obs.WriteArtifact(*ctrlOut, srv.CtrlRegistry().WriteText); err != nil {
			fatalf("write %s: %v", *ctrlOut, err)
		}
	}
	if serveErr != nil {
		fatalf("%v", serveErr)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "llmpq-serve: "+format+"\n", args...)
	os.Exit(1)
}
