// Command llmpq-indicator produces the per-(layer, bitwidth) sensitivity
// table ω that llmpq-algo consumes via -omega-file — the paper's Indicator
// Generator component (§3, §4.2):
//
//	llmpq-indicator -model-name opt-30b -o omega.json          # synthetic (big models)
//	llmpq-indicator -reference -method variance -o omega.json  # from the reference net
//	llmpq-indicator -reference -method hessian -o omega.json   # the expensive baseline
//
// For full-size models (no weights available in this substrate) the table
// is synthesized from the model's shape; for the reference transformer it
// is computed from real weights and calibrated activations, with the
// variance indicator (Prop. 2), the Hessian probe, or random assignment.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/indicator"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/quant"
)

func main() {
	var (
		modelName = flag.String("model-name", "", "full-size model for a synthetic table (opt-13b, ...)")
		reference = flag.Bool("reference", false, "compute from the reference transformer instead")
		method    = flag.String("method", "variance", "reference indicator: variance | hessian | random")
		seed      = flag.Int64("seed", 42, "seed for synthetic/random tables and calibration data")
		out       = flag.String("o", "omega.json", "output file")
	)
	flag.Parse()
	bits := []int{3, 4, 8, 16}

	var omega indicator.Omega
	start := time.Now()
	switch {
	case *reference:
		cfg := nn.TinyOPT
		m, err := nn.New(cfg, *seed)
		if err != nil {
			fatalf("%v", err)
		}
		rng := rand.New(rand.NewSource(*seed + 1))
		var calib [][]int
		for i := 0; i < 3; i++ {
			seq, err := m.Generate([]int{i + 1, 2}, 32, 0.7, rng)
			if err != nil {
				fatalf("%v", err)
			}
			calib = append(calib, seq)
		}
		if err := m.CalibrateStats(calib[0]); err != nil {
			fatalf("%v", err)
		}
		switch *method {
		case "variance":
			omega, err = indicator.Variance(m, bits, quant.Deterministic)
		case "hessian":
			omega, err = indicator.Hessian(m, bits, calib)
		case "random":
			omega = indicator.Random(cfg.Layers, bits, *seed)
		default:
			fatalf("unknown method %q (variance|hessian|random)", *method)
		}
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("computed %s indicator for the %d-layer reference model in %v\n", *method, cfg.Layers, time.Since(start))
	case *modelName != "":
		cfg, err := model.ByName(*modelName)
		if err != nil {
			fatalf("%v", err)
		}
		omega = indicator.Synthetic(cfg, bits, *seed)
		fmt.Printf("synthesized sensitivity table for %s (%d layers)\n", cfg.Name, cfg.Layers)
	default:
		fatalf("need -model-name or -reference")
	}
	if err := core.SaveOmega(*out, omega); err != nil {
		fatalf("write %s: %v", *out, err)
	}
	fmt.Printf("omega table (%d layers x %v bits) written to %s\n", omega.Layers(), bits, *out)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "llmpq-indicator: "+format+"\n", args...)
	os.Exit(1)
}
