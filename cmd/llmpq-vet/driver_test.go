package main

// End-to-end driver tests run against a small throwaway module named
// "repro" in a temp dir, so the sim/ctrl manifest's path rules apply
// without re-analyzing (or polluting) the real tree.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// writeTestModule lays out a module with one sim package (carrying a
// deliberate wall-clock read) and one clean helper package, and chdirs
// into it for the duration of the test.
func writeTestModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		full := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module repro\n\ngo 1.22\n")
	write("internal/assigner/bad.go", `package assigner

import "time"

// Stamp reads the wall clock inside a sim-deterministic package — the
// seeded violation the acceptance test expects simwallclock to catch.
func Stamp() time.Time {
	return time.Now()
}
`)
	write("internal/workload/clean.go", `package workload

// Size is deliberately boring: no findings here.
func Size(n int) int {
	return n * 2
}
`)
	t.Chdir(root)
	return root
}

// TestSeededWallClockFails is the acceptance check: a deliberate
// time.Now() in internal/assigner must fail the run with a simwallclock
// finding.
func TestSeededWallClockFails(t *testing.T) {
	writeTestModule(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("want exit 1 on the seeded violation, got %d\n%s%s", code, stdout.String(), stderr.String())
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range diags {
		if d.Analyzer == "simwallclock" && strings.Contains(d.Message, "time.Now") {
			found = true
		}
	}
	if !found {
		t.Fatalf("want a simwallclock time.Now finding, got %+v", diags)
	}
}

// TestResultCache verifies the second run serves every package from the
// cache with byte-identical findings, and that editing a file
// invalidates exactly the packages whose import closure changed.
func TestResultCache(t *testing.T) {
	root := writeTestModule(t)
	cacheDir := filepath.Join(root, ".vetcache")

	runOnce := func() (int, string, string) {
		var stdout, stderr bytes.Buffer
		code := run([]string{"-json", "-cache-dir", cacheDir, "./..."}, &stdout, &stderr)
		return code, stdout.String(), stderr.String()
	}

	code1, out1, err1 := runOnce()
	if code1 != 1 {
		t.Fatalf("first run: want exit 1, got %d\n%s", code1, err1)
	}
	if !strings.Contains(err1, "0/2 packages from cache") {
		t.Fatalf("first run should be all misses, stderr: %q", err1)
	}

	code2, out2, err2 := runOnce()
	if code2 != 1 {
		t.Fatalf("second run: want exit 1, got %d\n%s", code2, err2)
	}
	if !strings.Contains(err2, "2/2 packages from cache") {
		t.Fatalf("second run should be all hits, stderr: %q", err2)
	}
	if out1 != out2 {
		t.Fatalf("cached findings differ from fresh findings:\n--- fresh\n%s--- cached\n%s", out1, out2)
	}

	// Editing the clean package re-analyzes only it — and a new
	// violation there must surface despite the warm cache.
	bad := `package workload

import "time"

func Size(n int) int {
	_ = time.Now()
	return n * 2
}
`
	if err := os.WriteFile(filepath.Join(root, "internal/workload/clean.go"), []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	code3, out3, err3 := runOnce()
	if code3 != 1 {
		t.Fatalf("third run: want exit 1, got %d\n%s", code3, err3)
	}
	if !strings.Contains(err3, "1/2 packages from cache") {
		t.Fatalf("only the edited package should miss, stderr: %q", err3)
	}
	if !strings.Contains(out3, "internal/workload/clean.go") {
		t.Fatalf("the fresh violation should surface, got:\n%s", out3)
	}
}

// TestSARIFOutput checks the -sarif sidecar: valid JSON, SARIF 2.1.0,
// one rule per enabled analyzer, and the seeded finding as a result.
func TestSARIFOutput(t *testing.T) {
	root := writeTestModule(t)
	sarifPath := filepath.Join(root, "out.sarif")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-sarif", sarifPath, "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("want exit 1, got %d\n%s", code, stderr.String())
	}
	data, err := os.ReadFile(sarifPath)
	if err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("sarif output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Fatalf("sarif version %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("want one run, got %d", len(log.Runs))
	}
	rules := log.Runs[0].Tool.Driver.Rules
	if len(rules) < 5 {
		t.Fatalf("want at least 5 rules, got %d", len(rules))
	}
	seen := map[string]bool{}
	for _, r := range rules {
		seen[r.ID] = true
	}
	for _, want := range []string{"simwallclock", "mapiter", "registrysplit", "goroleak", "errdrop"} {
		if !seen[want] {
			t.Fatalf("rule %q missing from SARIF output (have %v)", want, rules)
		}
	}
	foundResult := false
	for _, r := range log.Runs[0].Results {
		if r.RuleID == "simwallclock" && len(r.Locations) == 1 {
			foundResult = true
		}
	}
	if !foundResult {
		t.Fatal("seeded simwallclock finding missing from SARIF results")
	}
}
