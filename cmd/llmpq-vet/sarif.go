package main

import (
	"encoding/json"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

// Minimal SARIF 2.1.0 writer: one run, one rule per enabled analyzer,
// one result per diagnostic. Only the fields code-scanning consumers
// actually read are emitted.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

func writeSARIF(path string, active []*analysis.Analyzer, diags []analysis.Diagnostic) error {
	rules := make([]sarifRule, 0, len(active)+1)
	for _, a := range active {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	// Directive misuse (unused/ill-formed llmpq:allow) is filed under the
	// always-on pseudo-rule.
	rules = append(rules, sarifRule{ID: "allow", ShortDescription: sarifMessage{
		Text: "llmpq:allow directives must name a real analyzer, carry a reason, and still suppress something",
	}})

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(d.File)},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "llmpq-vet", Rules: rules}},
			Results: results,
		}},
	}
	data, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
