package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestModuleIsVetClean is the CI gate: the whole module must stay free of
// findings (suppressions with a justification comment count as clean).
func TestModuleIsVetClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	// The test runs with cwd = cmd/llmpq-vet; ../../... covers the module.
	if code := run([]string{"../../..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("llmpq-vet exit %d on the module:\n%s%s", code, stdout.String(), stderr.String())
	}
}

func TestJSONOutputAndAnalyzerFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "../../internal/simclock"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("output is not a JSON diagnostics array: %v\n%s", err, stdout.String())
	}
	if len(diags) != 0 {
		t.Fatalf("simclock should be clean, got %+v", diags)
	}

	// Disabling every analyzer must always yield a clean run.
	stdout.Reset()
	stderr.Reset()
	args := []string{}
	for _, a := range analysis.Analyzers() {
		args = append(args, "-"+a.Name+"=false")
	}
	args = append(args, "../../internal/runtime")
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("all-disabled run should pass, exit %d: %s", code, stderr.String())
	}
}

func TestBadPatternExitsTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"../../no/such/dir"}, &stdout, &stderr); code != 2 {
		t.Fatalf("want exit 2 for a bad directory, got %d", code)
	}
	if !strings.Contains(stderr.String(), "llmpq-vet:") {
		t.Fatalf("stderr should carry the error, got %q", stderr.String())
	}
}
