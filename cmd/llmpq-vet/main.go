// Command llmpq-vet runs LLM-PQ's domain-aware static-analysis suite
// (internal/analysis) over the module: bitwidth-set membership, unit-suffix
// arithmetic, rand seeding discipline, float equality, pipeline concurrency
// rules, and the sim/ctrl contract (wall-clock use, map-iteration order,
// registry split, goroutine joinability, dropped I/O errors). It
// type-checks every package from source with no dependencies beyond the
// standard library.
//
//	llmpq-vet ./...                  # whole module (CI gate)
//	llmpq-vet -json ./internal/...   # machine-readable findings
//	llmpq-vet -sarif out.sarif ./... # SARIF 2.1.0 for code-scanning UIs
//	llmpq-vet -cache-dir .vetcache ./...  # reuse results for unchanged packages
//	llmpq-vet -unitmix=false ./...   # disable one analyzer
//
// Exit status: 0 clean, 1 findings, 2 load/usage error. A finding is
// suppressed by `//llmpq:ignore <analyzers> <why>` (legacy, unchecked) or
// `//llmpq:allow(<analyzer>): <reason>` — the allow form requires a reason
// and reports directives that no longer suppress anything.
//
// Analysis is parallel across packages (-parallel, default GOMAXPROCS);
// loading and type-checking stay serial because the loader shares state.
// With -cache-dir, per-package results are keyed by a content hash of the
// package's module-local import closure, the suite's own sources, the
// manifest, and the enabled analyzer set, so repeat runs over an unchanged
// tree skip analysis entirely.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("llmpq-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	sarifPath := fs.String("sarif", "", "also write findings as SARIF 2.1.0 to this file")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "number of packages analyzed concurrently")
	cacheDir := fs.String("cache-dir", "", "directory for the per-package result cache (empty = no caching)")
	enabled := map[string]*bool{}
	for _, a := range analysis.Analyzers() {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer: "+a.Doc)
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var active []*analysis.Analyzer
	for _, a := range analysis.Analyzers() {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}
	if *parallel < 1 {
		*parallel = 1
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "llmpq-vet: %v\n", err)
		return 2
	}
	modRoot, modPath, err := analysis.FindModule(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "llmpq-vet: %v\n", err)
		return 2
	}
	dirs, err := resolvePatterns(cwd, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "llmpq-vet: %v\n", err)
		return 2
	}

	// The whole-module import scan feeds two things: the sim/ctrl fact
	// propagation (facts must see the full graph even when analyzing a
	// subset) and the cache keys (a package's result depends on its
	// module-local import closure).
	graph, err := scanImports(modRoot, modPath)
	if err != nil {
		fmt.Fprintf(stderr, "llmpq-vet: %v\n", err)
		return 2
	}
	facts := analysis.ComputeFacts(nil, graph.imports)

	var cache *resultCache
	if *cacheDir != "" {
		cache, err = newResultCache(*cacheDir, graph, activeNames(active))
		if err != nil {
			fmt.Fprintf(stderr, "llmpq-vet: cache: %v\n", err)
			return 2
		}
	}

	// Phase 1: satisfy what we can from the cache; collect the rest.
	perDir := make([][]analysis.Diagnostic, len(dirs))
	var misses []int
	for i, dir := range dirs {
		if cache != nil {
			if diags, ok := cache.get(dirImportPath(modRoot, modPath, dir)); ok {
				perDir[i] = diags
				continue
			}
		}
		misses = append(misses, i)
	}

	// Phase 2: load misses serially (the loader shares one fileset and
	// package map), then analyze them in parallel — the type-checked Info
	// is read-only from here on.
	loader := analysis.NewLoader(modRoot, modPath)
	pkgs := make([]*analysis.Package, len(misses))
	for j, i := range misses {
		pkg, err := loader.LoadDir(dirs[i])
		if err != nil {
			fmt.Fprintf(stderr, "llmpq-vet: %v\n", err)
			return 2
		}
		pkgs[j] = pkg
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, *parallel)
	for j := range pkgs {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			perDir[misses[j]] = analysis.RunPackageFacts(pkgs[j], active, facts)
		}(j)
	}
	wg.Wait()
	if cache != nil {
		for j, i := range misses {
			if err := cache.put(pkgs[j].Path, perDir[i]); err != nil {
				fmt.Fprintf(stderr, "llmpq-vet: cache: %v\n", err)
				return 2
			}
		}
		fmt.Fprintf(stderr, "llmpq-vet: %d/%d packages from cache\n", len(dirs)-len(misses), len(dirs))
	}

	var diags []analysis.Diagnostic
	for _, d := range perDir {
		diags = append(diags, d...)
	}
	for i := range diags {
		if rel, err := filepath.Rel(cwd, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
		}
	}

	if *sarifPath != "" {
		if err := writeSARIF(*sarifPath, active, diags); err != nil {
			fmt.Fprintf(stderr, "llmpq-vet: sarif: %v\n", err)
			return 2
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "llmpq-vet: encode: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "llmpq-vet: %d finding(s) across %d package(s)\n", len(diags), len(dirs))
		}
		return 1
	}
	return 0
}

func activeNames(active []*analysis.Analyzer) []string {
	names := make([]string, len(active))
	for i, a := range active {
		names[i] = a.Name
	}
	sort.Strings(names)
	return names
}

// dirImportPath maps an absolute package directory to its import path.
func dirImportPath(modRoot, modPath, dir string) string {
	rel, err := filepath.Rel(modRoot, dir)
	if err != nil || rel == "." {
		return modPath
	}
	return modPath + "/" + filepath.ToSlash(rel)
}

// resolvePatterns expands "./..."-style patterns and plain directories into
// the list of package directories to analyze.
func resolvePatterns(cwd string, patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			if rest == "" {
				rest = "."
			}
			root := rest
			if !filepath.IsAbs(root) {
				root = filepath.Join(cwd, root)
			}
			sub, err := analysis.PackageDirs(root)
			if err != nil {
				return nil, err
			}
			for _, d := range sub {
				if !seen[d] {
					seen[d] = true
					dirs = append(dirs, d)
				}
			}
			continue
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(cwd, dir)
		}
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	return dirs, nil
}
