// Command llmpq-vet runs LLM-PQ's domain-aware static-analysis suite
// (internal/analysis) over the module: bitwidth-set membership, unit-suffix
// arithmetic, rand seeding discipline, float equality, and pipeline
// concurrency rules. It type-checks every package from source with no
// dependencies beyond the standard library.
//
//	llmpq-vet ./...                 # whole module (CI gate)
//	llmpq-vet -json ./internal/...  # machine-readable findings
//	llmpq-vet -unitmix=false ./...  # disable one analyzer
//
// Exit status: 0 clean, 1 findings, 2 load/usage error. A finding is
// suppressed by a trailing or preceding comment
// `//llmpq:ignore <analyzer>[,<analyzer>] <justification>`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("llmpq-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	enabled := map[string]*bool{}
	for _, a := range analysis.Analyzers() {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer: "+a.Doc)
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var active []*analysis.Analyzer
	for _, a := range analysis.Analyzers() {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "llmpq-vet: %v\n", err)
		return 2
	}
	modRoot, modPath, err := analysis.FindModule(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "llmpq-vet: %v\n", err)
		return 2
	}
	dirs, err := resolvePatterns(cwd, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "llmpq-vet: %v\n", err)
		return 2
	}

	loader := analysis.NewLoader(modRoot, modPath)
	var diags []analysis.Diagnostic
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintf(stderr, "llmpq-vet: %v\n", err)
			return 2
		}
		diags = append(diags, analysis.RunPackage(pkg, active)...)
	}
	for i := range diags {
		if rel, err := filepath.Rel(cwd, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "llmpq-vet: encode: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "llmpq-vet: %d finding(s) across %d package(s)\n", len(diags), len(dirs))
		}
		return 1
	}
	return 0
}

// resolvePatterns expands "./..."-style patterns and plain directories into
// the list of package directories to analyze.
func resolvePatterns(cwd string, patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			if rest == "" {
				rest = "."
			}
			root := rest
			if !filepath.IsAbs(root) {
				root = filepath.Join(cwd, root)
			}
			sub, err := analysis.PackageDirs(root)
			if err != nil {
				return nil, err
			}
			for _, d := range sub {
				if !seen[d] {
					seen[d] = true
					dirs = append(dirs, d)
				}
			}
			continue
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(cwd, dir)
		}
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	return dirs, nil
}
