package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// moduleGraph is the cheap whole-module view a run starts with: every
// package's non-test .go files, their content hashes, and the
// module-local import edges. Built with parser.ImportsOnly, so it costs
// a fraction of a type-check.
type moduleGraph struct {
	modRoot string
	modPath string
	imports map[string][]string // import path → module-local deps
	files   map[string][]string // import path → absolute file paths (sorted)
	fileSum map[string]string   // import path → hash over file names+contents
}

func scanImports(modRoot, modPath string) (*moduleGraph, error) {
	dirs, err := analysis.PackageDirs(modRoot)
	if err != nil {
		return nil, err
	}
	g := &moduleGraph{
		modRoot: modRoot,
		modPath: modPath,
		imports: map[string][]string{},
		files:   map[string][]string{},
		fileSum: map[string]string{},
	}
	fset := token.NewFileSet()
	for _, dir := range dirs {
		path := dirImportPath(modRoot, modPath, dir)
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		depSet := map[string]bool{}
		var files []string
		h := sha256.New()
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			full := filepath.Join(dir, name)
			files = append(files, full)
			data, err := os.ReadFile(full)
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(h, "%s %x\n", name, sha256.Sum256(data))
			f, err := parser.ParseFile(fset, full, data, parser.ImportsOnly)
			if err != nil {
				return nil, err
			}
			for _, imp := range f.Imports {
				dep := strings.Trim(imp.Path.Value, `"`)
				if dep == modPath || strings.HasPrefix(dep, modPath+"/") {
					depSet[dep] = true
				}
			}
		}
		if len(files) == 0 {
			continue
		}
		deps := make([]string, 0, len(depSet))
		for d := range depSet {
			deps = append(deps, d)
		}
		sort.Strings(deps)
		g.imports[path] = deps
		g.files[path] = files
		g.fileSum[path] = hex.EncodeToString(h.Sum(nil))
	}
	return g, nil
}

// closure returns the package's module-local import closure, sorted.
func (g *moduleGraph) closure(path string) []string {
	seen := map[string]bool{path: true}
	queue := []string{path}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, dep := range g.imports[cur] {
			if !seen[dep] {
				seen[dep] = true
				queue = append(queue, dep)
			}
		}
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// cacheSchema bumps invalidate every entry; raise it when the Diagnostic
// shape or key derivation changes.
const cacheSchema = "llmpq-vet-cache-v1"

// resultCache stores per-package diagnostics keyed by a content hash of
// everything that can change the result: the Go toolchain, the enabled
// analyzer set, the suite's own sources (analyzers + driver + manifest),
// and the name+content of every file in the package's module-local
// import closure. Diagnostics are stored with module-root-relative paths
// so entries survive a checkout move.
type resultCache struct {
	dir      string
	graph    *moduleGraph
	suiteSum string
}

func newResultCache(dir string, g *moduleGraph, analyzerNames []string) (*resultCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// The suite's own sources are part of every key: editing an analyzer
	// (or this driver) must invalidate the world.
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s\n%s\n", cacheSchema, runtime.Version(), strings.Join(analyzerNames, ","))
	for _, suitePkg := range []string{g.modPath + "/internal/analysis", g.modPath + "/cmd/llmpq-vet"} {
		fmt.Fprintf(h, "%s %s\n", suitePkg, g.fileSum[suitePkg])
	}
	// The manifest is embedded, not a .go file — hash it explicitly.
	manifest, err := os.ReadFile(filepath.Join(g.modRoot, "internal", "analysis", "simctrl.manifest"))
	if err == nil {
		fmt.Fprintf(h, "manifest %x\n", sha256.Sum256(manifest))
	}
	return &resultCache{
		dir:      dir,
		graph:    g,
		suiteSum: hex.EncodeToString(h.Sum(nil)),
	}, nil
}

func (c *resultCache) key(path string) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s\n", c.suiteSum, path)
	for _, dep := range c.graph.closure(path) {
		fmt.Fprintf(h, "%s %s\n", dep, c.graph.fileSum[dep])
	}
	return hex.EncodeToString(h.Sum(nil))
}

func (c *resultCache) entryPath(path string) string {
	return filepath.Join(c.dir, c.key(path)+".json")
}

func (c *resultCache) get(path string) ([]analysis.Diagnostic, bool) {
	data, err := os.ReadFile(c.entryPath(path))
	if err != nil {
		return nil, false
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal(data, &diags); err != nil {
		return nil, false // corrupt entry: fall through to re-analysis
	}
	for i := range diags {
		diags[i].File = filepath.Join(c.graph.modRoot, filepath.FromSlash(diags[i].File))
	}
	return diags, true
}

func (c *resultCache) put(path string, diags []analysis.Diagnostic) error {
	stored := make([]analysis.Diagnostic, len(diags))
	copy(stored, diags)
	for i := range stored {
		rel, err := filepath.Rel(c.graph.modRoot, stored[i].File)
		if err != nil || strings.HasPrefix(rel, "..") {
			rel = stored[i].File
		}
		stored[i].File = filepath.ToSlash(rel)
	}
	data, err := json.Marshal(stored)
	if err != nil {
		return err
	}
	tmp := c.entryPath(path) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, c.entryPath(path))
}
