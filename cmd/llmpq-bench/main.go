// Command llmpq-bench regenerates every table and figure of the paper's
// evaluation section on the simulated substrate:
//
//	llmpq-bench            # run everything
//	llmpq-bench -only table4,fig9
//	llmpq-bench -list
//
// Output is aligned text, one block per experiment, in paper order.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/assigner"
	"repro/internal/chaos"
	"repro/internal/experiments"
)

type runner struct {
	id  string
	run func() (*experiments.Table, error)
}

func runners() []runner {
	return []runner{
		{"fig1", func() (*experiments.Table, error) { t, _, err := experiments.Fig1(); return t, err }},
		{"fig3", func() (*experiments.Table, error) { t, _, err := experiments.Fig3(); return t, err }},
		{"fig4", func() (*experiments.Table, error) { t, _, err := experiments.Fig4(); return t, err }},
		{"fig5", func() (*experiments.Table, error) { t, _, err := experiments.Fig5(); return t, err }},
		{"table1", func() (*experiments.Table, error) { t, _, err := experiments.Table1(); return t, err }},
		{"table3", func() (*experiments.Table, error) { return experiments.Table3(), nil }},
		{"fig7", func() (*experiments.Table, error) { t, _, err := experiments.Fig7(); return t, err }},
		{"table4", func() (*experiments.Table, error) {
			t, all, err := experiments.Table4()
			return withSpeedup(t, all), err
		}},
		{"table5", func() (*experiments.Table, error) { t, _, err := experiments.Table5(); return t, err }},
		{"table6", func() (*experiments.Table, error) { t, _, err := experiments.Table6(); return t, err }},
		{"table7", func() (*experiments.Table, error) { t, _, err := experiments.Table7(); return t, err }},
		{"table8", func() (*experiments.Table, error) { t, _, err := experiments.Table8(); return t, err }},
		{"fig8", func() (*experiments.Table, error) { t, _, err := experiments.Fig8(); return t, err }},
		{"fig9", func() (*experiments.Table, error) { t, _, err := experiments.Fig9(); return t, err }},
		{"table9", func() (*experiments.Table, error) { return experiments.Table9(), nil }},
		{"table10", func() (*experiments.Table, error) { t, _, err := experiments.Table10(); return t, err }},
		// Extensions the paper describes but does not evaluate (§5, §7).
		{"ext-schemes", func() (*experiments.Table, error) { t, _, err := experiments.ExtSchemes(); return t, err }},
		{"ext-loader", func() (*experiments.Table, error) { t, _, err := experiments.ExtLoader(); return t, err }},
		{"ext-tp", func() (*experiments.Table, error) { t, _, err := experiments.ExtTP(); return t, err }},
		{"ext-online", func() (*experiments.Table, error) { t, _, err := experiments.ExtOnline(); return t, err }},
		{"ext-kv", func() (*experiments.Table, error) { t, _, err := experiments.ExtKVCache(); return t, err }},
		{"ext-buckets", func() (*experiments.Table, error) { t, _, err := experiments.ExtBuckets(); return t, err }},
		{"ext-cost", func() (*experiments.Table, error) { t, _, err := experiments.ExtCost(); return t, err }},
		{"ext-trained", func() (*experiments.Table, error) { t, _, err := experiments.ExtTrained(); return t, err }},
	}
}

func withSpeedup(t *experiments.Table, all []experiments.ServingComparison) *experiments.Table {
	if t == nil {
		return nil
	}
	avg, max, n := experiments.AverageSpeedup(all)
	t.Notes = append(t.Notes, fmt.Sprintf(
		"LLM-PQ vs PipeEdge: avg %.2fx, max %.2fx over %d clusters (paper: up to 2.88x)", avg, max, n))
	return t
}

func main() {
	var (
		only       = flag.String("only", "", "comma-separated experiment ids to run")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		metricsOut = flag.String("metrics-out", "", "run an instrumented demo serve and write its metrics dump here")
		traceOut   = flag.String("trace-out", "", "run an instrumented demo serve and write its Chrome trace JSON here")
		parallel   = flag.Int("parallel", 0, "planner search workers for every experiment (0 = all CPUs); plans are identical at any setting")
		chaosProf  = flag.String("chaos-profile", "", fmt.Sprintf("run the fault-injection demo with this profile (one of %v)", chaos.Profiles()))
		chaosSeed  = flag.Int64("chaos-seed", 1, "seed for -chaos-profile; same seed reproduces the fault run byte-for-byte")
		solveCache = flag.Bool("solve-cache", true, "memoize solver tables across solves so replans warm-start; plans are byte-identical either way")
	)
	flag.Parse()
	assigner.SetDefaultParallelism(*parallel)

	rs := runners()
	if *list {
		for _, r := range rs {
			fmt.Println(r.id)
		}
		return
	}
	if *chaosProf != "" {
		if err := runChaos(*chaosProf, *chaosSeed, *metricsOut, *traceOut, *solveCache); err != nil {
			fmt.Fprintf(os.Stderr, "llmpq-bench: chaos run failed: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *metricsOut != "" || *traceOut != "" {
		if err := runObserved(*metricsOut, *traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "llmpq-bench: observed serve failed: %v\n", err)
			os.Exit(1)
		}
		// The observed demo stands alone unless experiments were also named.
		if *only == "" {
			return
		}
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
		for id := range want {
			if !hasRunner(rs, id) {
				fmt.Fprintf(os.Stderr, "llmpq-bench: unknown experiment %q (try -list)\n", id)
				os.Exit(1)
			}
		}
	}
	start := time.Now()
	ran := 0
	for _, r := range rs {
		if len(want) > 0 && !want[r.id] {
			continue
		}
		t0 := time.Now()
		tab, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "llmpq-bench: %s failed: %v\n", r.id, err)
			os.Exit(1)
		}
		fmt.Print(tab.Render())
		fmt.Printf("(%s in %v)\n\n", r.id, time.Since(t0).Round(time.Millisecond))
		ran++
	}
	fmt.Printf("regenerated %d experiments in %v\n", ran, time.Since(start).Round(time.Millisecond))
}

func hasRunner(rs []runner, id string) bool {
	for _, r := range rs {
		if r.id == id {
			return true
		}
	}
	return false
}
