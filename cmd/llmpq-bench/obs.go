package main

import (
	"fmt"
	"os"

	"repro/internal/assigner"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/runtime"
)

// runObserved serves one small offline workload end to end — plan with the
// assigner, execute on the simulated engine — with full observability
// attached, then writes the requested artifacts: a Prometheus-style text
// dump (-metrics-out) and a Chrome trace_event JSON (-trace-out) loadable
// in chrome://tracing or Perfetto. The trace is re-parsed after writing so
// a corrupt artifact fails the run instead of failing the viewer later.
func runObserved(metricsOut, traceOut string) error {
	reg := obs.NewRegistry()
	rec := obs.NewSpanRecorder()

	spec, err := core.BuildSpec(core.Request{
		ModelName:     "opt-13b",
		DeviceNames:   []string{"T4", "V100"},
		DeviceNumbers: []int{1, 1},
		Interconnect:  "eth800",
		GlobalBatch:   8,
		PromptLen:     128,
		Generate:      16,
		Theta:         0.1,
		Group:         4,
		Method:        assigner.MethodDP,
	})
	if err != nil {
		return err
	}
	spec.Obs = reg
	res, err := assigner.Optimize(spec, nil)
	if err != nil {
		return err
	}
	eng, err := runtime.NewEngine(spec, res.Plan, nil)
	if err != nil {
		return err
	}
	eng.Obs = reg
	eng.Spans = rec
	st, err := eng.Run()
	if err != nil {
		return err
	}
	fmt.Printf("observed serve: %s on %s — latency %.2f s, throughput %.2f token/s, %d spans\n",
		spec.Cfg.Name, spec.Cluster.Name, st.LatencySec, st.Throughput, rec.Len())

	if metricsOut != "" {
		if err := obs.WriteArtifact(metricsOut, reg.WriteText); err != nil {
			return fmt.Errorf("write metrics: %w", err)
		}
		fmt.Printf("metrics dump: %s\n", metricsOut)
	}
	if traceOut != "" {
		if err := obs.WriteArtifact(traceOut, rec.WriteChromeTrace); err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
		// Self-validate: the artifact must round-trip as trace_event JSON
		// and carry spans from multiple stages and both phases.
		rd, err := os.Open(traceOut)
		if err != nil {
			return err
		}
		spans, perr := obs.ParseChromeTrace(rd)
		if cerr := rd.Close(); perr == nil {
			perr = cerr
		}
		if perr != nil {
			return fmt.Errorf("trace %s does not parse: %w", traceOut, perr)
		}
		stages := map[int]bool{}
		cats := map[string]bool{}
		for _, sp := range spans {
			stages[sp.TID] = true
			cats[sp.Cat] = true
		}
		if len(stages) < 2 || !cats["prefill"] || !cats["decode"] {
			return fmt.Errorf("trace %s incomplete: %d stage rows, categories %v",
				traceOut, len(stages), cats)
		}
		fmt.Printf("chrome trace: %s (%d events, %d stage rows)\n", traceOut, len(spans), len(stages))
	}
	return nil
}
