package main

import (
	"fmt"
	"os"

	"repro/internal/assigner"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/failover"
	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/online"
	"repro/internal/runtime"
)

// runChaos executes the reproducible fault demo behind -chaos-profile /
// -chaos-seed: plan the same small heterogeneous workload as the observed
// demo, derive a fault schedule from the profile and seed, and serve
// through the failover controller (or, for the kv-pressure profile, the
// online simulator's graceful-degradation path). Every line printed and
// every byte of the -metrics-out / -trace-out artifacts is a pure
// function of (profile, seed): the chaos run deliberately skips the
// wall-clock solver metrics (Spec.Obs stays nil) so two invocations with
// the same seed diff clean — the contract scripts/verify.sh's chaos
// smoke enforces. The solve cache keeps that contract: its hit/miss
// counters (flushed by the replan) are deterministic per workload.
func runChaos(profile string, seed int64, metricsOut, traceOut string, solveCache bool) error {
	if profile == chaos.ProfileKVPressure {
		return runChaosOnline(profile, seed, metricsOut)
	}
	reg := obs.NewRegistry()
	rec := obs.NewSpanRecorder()

	spec, err := core.BuildSpec(core.Request{
		ModelName:     "opt-13b",
		DeviceNames:   []string{"T4", "V100"},
		DeviceNumbers: []int{1, 1},
		Interconnect:  "eth800",
		GlobalBatch:   8,
		PromptLen:     128,
		Generate:      16,
		Theta:         0.1,
		Group:         4,
		Method:        assigner.MethodDP,
	})
	if err != nil {
		return err
	}
	if solveCache {
		// The initial solve seeds the cache; the failover replan then
		// warm-starts from it (timing rows and benefit tables survive the
		// device loss, and the incumbent prunes the degraded scan).
		spec.Cache = assigner.NewSolveCache()
	}
	res, err := assigner.Optimize(spec, nil)
	if err != nil {
		return err
	}

	// Fault-free baseline fixes the token target and the horizon the
	// profile places its faults in.
	baseEng := &runtime.Engine{Spec: spec, Plan: res.Plan, Timer: assigner.ProfilerTimer{}}
	base, err := baseEng.Run()
	if err != nil {
		return err
	}
	sched, err := chaos.New(profile, seed, res.Plan.NumStages(), base.LatencySec)
	if err != nil {
		return err
	}

	ctl := &failover.Controller{Spec: spec, Plan: res.Plan, Timer: assigner.ProfilerTimer{}, Obs: reg, Spans: rec}
	rep, err := ctl.Run(sched)
	if err != nil {
		return err
	}
	fmt.Printf("chaos serve: profile %s seed %d on %s — %d faults\n",
		profile, seed, spec.Cluster.Name, len(sched.Faults))
	fmt.Printf("baseline: %d tokens in %.4f s\n", base.TokensOut, base.LatencySec)
	if rep.Replanned {
		fmt.Printf("device loss: stage %d (%s) at %.4f s, watermark %d tokens/request\n",
			rep.Lost.Stage, rep.LostDevice, rep.Lost.AtSec, rep.Lost.Watermark)
		fmt.Printf("replanned: %d stages on degraded cluster, %d layers migrated (%.0f MB, %.4f s)\n",
			rep.DegradedPlan.NumStages(), rep.MovedLayers, rep.Migration.TotalBytes/1e6, rep.Migration.TransferSec)
	}
	if rep.Restored {
		fmt.Printf("device heal: %s returned; restore halt at %.4f s, watermark %d tokens/request\n",
			rep.LostDevice, rep.RestoreHalt.AtSec, rep.RestoreHalt.Watermark)
		fmt.Printf("restored: %d stages on the full cluster, %d layers migrated back (%.0f MB, %.4f s)\n",
			rep.RestoredPlan.NumStages(), rep.RestoreMovedLayers,
			rep.RestoreMigration.TotalBytes/1e6, rep.RestoreMigration.TransferSec)
	}
	if rep.Quarantined {
		fmt.Printf("flap damping: %s quarantined after repeated loss; run finished degraded\n", rep.LostDevice)
	}
	fmt.Printf("chaos total: %d tokens in %.4f s (lost tasks %d, downtime %.4f s)\n",
		rep.TotalTokens, rep.TotalLatencySec, rep.First.LostTasks, rep.First.DowntimeSec)
	if rep.TotalTokens != base.TokensOut {
		return fmt.Errorf("chaos run lost work: %d tokens vs %d baseline", rep.TotalTokens, base.TokensOut)
	}
	if err := writeMetrics(reg, metricsOut); err != nil {
		return err
	}
	return writeTrace(rec, traceOut)
}

// runChaosOnline drives the online simulator's graceful-degradation path
// under transient KV-allocation failures.
func runChaosOnline(profile string, seed int64, metricsOut string) error {
	reg := obs.NewRegistry()
	gpu, err := hardware.GPUByName("V100")
	if err != nil {
		return err
	}
	cfg, err := model.ByName("opt-13b")
	if err != nil {
		return err
	}
	const duration = 30.0
	sched, err := chaos.New(profile, seed, 1, duration)
	if err != nil {
		return err
	}
	st, err := online.Run(online.Config{
		GPU: gpu, Model: cfg, Bits: 4, Arrival: 2, Duration: duration,
		MaxNew: 32, MaxBatch: 16, Seed: seed, Obs: reg,
		Chaos: sched, ShedDepth: 64,
	})
	if err != nil {
		return err
	}
	fmt.Printf("chaos online: profile %s seed %d — %d completed, %d kv failures, %d retries, %d shed, %d rejected\n",
		profile, seed, st.Completed, st.KVFailures, st.KVRetries, st.Shed, st.Rejected)
	return writeMetrics(reg, metricsOut)
}

// writeMetrics dumps the registry as Prometheus text when a path is set.
func writeMetrics(reg *obs.Registry, path string) error {
	if path == "" {
		return nil
	}
	if err := obs.WriteArtifact(path, reg.WriteText); err != nil {
		return fmt.Errorf("write metrics: %w", err)
	}
	fmt.Printf("metrics dump: %s\n", path)
	return nil
}

// writeTrace dumps the span recorder as Chrome trace JSON when a path is
// set, re-parsing the artifact so corruption fails the run.
func writeTrace(rec *obs.SpanRecorder, path string) error {
	if path == "" {
		return nil
	}
	if err := obs.WriteArtifact(path, rec.WriteChromeTrace); err != nil {
		return fmt.Errorf("write trace: %w", err)
	}
	rd, err := os.Open(path)
	if err != nil {
		return err
	}
	spans, perr := obs.ParseChromeTrace(rd)
	if cerr := rd.Close(); perr == nil {
		perr = cerr
	}
	if perr != nil {
		return fmt.Errorf("trace %s does not parse: %w", path, perr)
	}
	fmt.Printf("chrome trace: %s (%d events)\n", path, len(spans))
	return nil
}
