// Heterogeneous-cluster walkthrough: serve OPT-30b on the paper's
// cluster 3 (3×T4-16G + 1×V100-32G) and compare LLM-PQ against every
// baseline of Table 4 — PipeEdge, Uniform, FlexGen, FlexGen-int8.
//
//	go run ./examples/heterocluster
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	fmt.Println("OPT-30b on cluster 3 (3xT4-16G + 1xV100-32G), s=512 n=100 B=32")
	fmt.Println()

	sc, err := experiments.CompareCluster(3, experiments.DefaultWork)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s %8s %12s %12s\n", "scheme", "PPL", "latency(s)", "token/s")
	for _, r := range sc.Results {
		if r.OOM {
			fmt.Printf("%-14s %8s %12s %12s\n", r.Scheme, "-", "-", "OOM")
			continue
		}
		fmt.Printf("%-14s %8.2f %12.2f %12.2f\n", r.Scheme, r.PPL, r.LatencySec, r.Throughput)
	}
	fmt.Println()

	pq, _ := sc.Get("LLM-PQ")
	pe, _ := sc.Get("PipeEdge")
	fmt.Printf("LLM-PQ vs PipeEdge: %.2fx throughput at equal-or-better PPL.\n",
		pq.Throughput/pe.Throughput)
	fmt.Println()

	// Show WHY: the plan mixes precisions per device class.
	plan := pq.Plan
	fmt.Println("the winning plan (stage → device, layers, bits):")
	for j := 0; j < plan.NumStages(); j++ {
		lo, hi, _ := plan.StageRange(j)
		hist := map[int]int{}
		for g := lo; g < hi; g++ {
			hist[plan.GroupBits[g]]++
		}
		fmt.Printf("  stage %d: device %d, layers [%d,%d), bits %v\n", j, plan.Order[j], lo, hi, hist)
	}
	fmt.Println()
	fmt.Println("T4s run INT8 (fast tensor-core path, halves weight traffic);")
	fmt.Println("the V100 keeps FP16/INT8 mixes since its INT8 kernels are slower than FP16.")
	fmt.Println("The V100 also takes the largest shard: phase-aware partition weighs both")
	fmt.Println("the compute-bound prefill and the memory-bound decode on every device.")
}
