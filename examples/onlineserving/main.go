// Online serving trade-off (§7): under vLLM/ORCA-style continuous
// batching, weight precision trades kernel speed against paged-KV memory.
// This example sweeps precision × arrival rate on one V100 serving
// OPT-13b and prints where each precision wins.
//
//	go run ./examples/onlineserving
package main

import (
	"fmt"
	"log"

	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/online"
)

func main() {
	fmt.Println("§7 extension: online serving on 1xV100, OPT-13b, 48 tokens per request")
	fmt.Println()
	pts, err := online.Sweep(hardware.V100, model.OPT13B, []int{4, 8, 16}, []float64{0.5, 4, 24}, 48, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-6s %-11s %10s %11s %13s %14s\n", "bits", "arrivals/s", "tok/s", "mean batch", "p95 lat (s)", "KV cap (tok)")
	for _, p := range pts {
		fmt.Printf("%-6d %-11.1f %10.1f %11.1f %13.1f %14d\n",
			p.Bits, p.Arrival, p.Stats.Throughput, p.Stats.MeanBatch,
			p.Stats.P95Latency, p.Stats.KVCapacityTok)
	}
	fmt.Println()
	fmt.Println("reading the table:")
	fmt.Println("- FP16 weights leave a sliver of paged-KV (≈2.3k tokens): fine at low load,")
	fmt.Println("  but under heavy load its batches stop growing and throughput collapses")
	fmt.Println("- INT8/INT4 free 8-11x more KV pages; their batches scale with load")
	fmt.Println("- on V100, INT8 beats INT4 at high load (slower INT4 kernels outweigh extra KV) —")
	fmt.Println("  the speed-vs-memory trade-off the paper says an online LLM-PQ must re-optimize")
}
