// Tensor-parallelism search (§7): when is it better to fuse devices into
// TP groups instead of deepening the pipeline? This example runs the mesh
// search on two settings — a healthy pipeline and a pathologically deep
// one — and prints the chosen mesh for each.
//
//	go run ./examples/tpsearch
package main

import (
	"fmt"
	"log"

	"repro/internal/assigner"
	"repro/internal/hardware"
	"repro/internal/indicator"
	"repro/internal/model"
	"repro/internal/tp"
)

func main() {
	fmt.Println("§7 extension: search over TP meshes (fused devices) + pipeline partition")
	fmt.Println()

	// Setting 1: 4xV100 on one NVLink node serving OPT-66b. Even with 64
	// layers over 4 stages, decode rounds are latency-dominated per hop,
	// so fusing into one TP-4 device can beat the pipeline.
	c10, err := hardware.ClusterByID(10)
	if err != nil {
		log.Fatal(err)
	}
	cfg66, err := model.ByName("opt-66b")
	if err != nil {
		log.Fatal(err)
	}
	show("4xV100 serving opt-66b (64 layers)", spec(c10, cfg66))

	// Setting 2: 8xV100 serving a 12-layer model over 100 Gbps Ethernet —
	// a depth-8 pipeline of 1-2 layer stages drowns in per-hop transfers;
	// fusing into TP groups collapses the pipeline.
	shallow := model.Config{Name: "opt-13b", Family: model.OPT, Hidden: 5120, FFN: 20480,
		Layers: 12, Heads: 40, VocabSize: 50272, MaxPosEmb: 2048, TiedEmbed: true}
	cl, err := hardware.NewCluster([]string{"V100"}, []int{8}, hardware.Eth100Gbps, "deep")
	if err != nil {
		log.Fatal(err)
	}
	show("8xV100 serving a 12-layer model (deep-pipeline pathology)", spec(cl, shallow))
}

func spec(cl hardware.Cluster, cfg model.Config) *assigner.Spec {
	return &assigner.Spec{
		Cfg: cfg, Cluster: cl,
		Work:                assigner.Workload{GlobalBatch: 32, Prompt: 512, Generate: 100},
		Bits:                []int{3, 4, 8, 16},
		Omega:               indicator.Synthetic(cfg, []int{3, 4, 8, 16}, 42),
		Theta:               1,
		Method:              assigner.MethodDP,
		PrefillMicroBatches: []int{1, 4},
	}
}

func show(name string, s *assigner.Spec) {
	base, err := assigner.Optimize(s, nil)
	if err != nil {
		log.Fatal(err)
	}
	clone := *s
	res, err := tp.Optimize(&clone, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s:\n", name)
	fmt.Printf("  pipeline-only: %.2f token/s over %d stages\n", base.Eval.Throughput, base.Plan.NumStages())
	fmt.Printf("  best mesh:     %s → %.2f token/s over %d stages (%d meshes searched)\n",
		res.Mesh.Desc, res.Eval.Throughput, res.Plan.NumStages(), res.Tried)
	if res.Eval.Throughput > base.Eval.Throughput*1.01 {
		fmt.Printf("  TP wins %.2fx: the pipeline was too deep for the layer count\n", res.Eval.Throughput/base.Eval.Throughput)
	} else {
		fmt.Println("  pipeline wins: TP's all-reduce tax exceeds the bubble savings")
	}
	fmt.Println()
}
