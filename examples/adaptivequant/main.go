// Adaptive-quantization exploration on a REAL model: quantize the
// reference transformer (internal/nn) under different schemes and measure
// actual perplexity and agreement accuracy — the Fig 4 / Table 1
// experiments in miniature, plus an indicator-guided assignment showing
// why sensitivity-aware bit placement beats random placement.
//
//	go run ./examples/adaptivequant
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"repro/internal/indicator"
	"repro/internal/nn"
	"repro/internal/quality"
	"repro/internal/quant"
)

func main() {
	cfg := nn.TinyOPT // a real 24-layer decoder-only transformer
	ref, err := quality.NewReference(cfg, 42, 6, 48)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference model: %d layers, hidden %d, vocab %d (real forward passes)\n\n",
		cfg.Layers, cfg.Hidden, cfg.Vocab)

	fmt.Printf("%-12s %10s %10s\n", "scheme", "PPL", "agreement")
	show := func(name string, bits []int) quality.ReferenceResult {
		res, err := ref.Measure(bits)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %10.3f %9.1f%%\n", name, res.PPL, res.Accuracy*100)
		return res
	}
	show("fp16", quality.UniformBits(cfg.Layers, 16))
	show("int8", quality.UniformBits(cfg.Layers, 8))
	r4 := show("int4", quality.UniformBits(cfg.Layers, 4))
	show("int3", quality.UniformBits(cfg.Layers, 3))
	show("mixed4-8", quality.MixedBits(cfg.Layers, 4, 8, 42))
	show("mixed3-4", quality.MixedBits(cfg.Layers, 3, 4, 42))
	fmt.Println()

	// Now place a memory budget of "half the layers at 4-bit, half at 16"
	// two ways: guided by the variance indicator vs against it.
	calib, err := ref.Model.Generate([]int{7, 3}, 32, 0.7, rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatal(err)
	}
	if err := ref.Model.CalibrateStats(calib); err != nil {
		log.Fatal(err)
	}
	omega, err := indicator.Variance(ref.Model, []int{3, 4, 8, 16}, quant.Deterministic)
	if err != nil {
		log.Fatal(err)
	}
	type ls struct {
		layer int
		w     float64
	}
	var sens []ls
	for l := 0; l < cfg.Layers; l++ {
		w, _ := omega.At(l, 4)
		sens = append(sens, ls{l, w})
	}
	sort.Slice(sens, func(i, j int) bool { return sens[i].w < sens[j].w })
	guided := quality.UniformBits(cfg.Layers, 16)
	antiGuided := quality.UniformBits(cfg.Layers, 16)
	for i := 0; i < cfg.Layers/2; i++ {
		guided[sens[i].layer] = 4                  // quantize the LEAST sensitive half
		antiGuided[sens[cfg.Layers-1-i].layer] = 4 // quantize the MOST sensitive half
	}
	fmt.Println("same memory budget (12 of 24 layers at 4-bit), two placements:")
	fp16, err := ref.Measure(quality.UniformBits(cfg.Layers, 16))
	if err != nil {
		log.Fatal(err)
	}
	g := show("guided", guided)
	show("anti-guided", antiGuided)
	fmt.Println()
	fmt.Printf("indicator-guided placement recovers %.0f%% of the uniform-INT4 PPL loss —\n",
		100*(r4.PPL-g.PPL)/(r4.PPL-fp16.PPL))
	fmt.Println("this ordering is exactly what LLM-PQ's assigner feeds into its ILP (§4.2).")
}
