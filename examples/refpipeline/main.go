// Real pipeline-parallel generation: shard the reference transformer
// across goroutine "workers" (one per pipeline stage, channels as the
// interconnect), apply a mixed-precision plan, and stream actual tokens —
// the functional miniature of the paper's distributed runtime (§3, §5).
//
// The same prompts are also decoded by a single-process model to verify
// the pipeline is lossless: pipelined greedy decoding must produce
// byte-identical outputs.
//
//	go run ./examples/refpipeline
package main

import (
	"fmt"
	"log"

	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/runtime"
)

func main() {
	cfg := nn.Config{Vocab: 96, Hidden: 32, FFN: 128, Layers: 6, Heads: 4, MaxSeq: 40, SensitivitySlope: 1}
	// Three stages of two layers each; middle stage quantized to 8-bit —
	// a miniature mixed-precision plan.
	boundaries := []int{0, 2, 4, 6}
	bits := []int{16, 16, 8, 8, 16, 16}

	m, err := nn.New(cfg, 21)
	if err != nil {
		log.Fatal(err)
	}
	pl, err := runtime.NewPipeline(m, boundaries, bits)
	if err != nil {
		log.Fatal(err)
	}
	prompts := [][]int{{3, 14, 15}, {9, 2, 6, 5}, {31}}
	out, err := pl.Generate(prompts, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("3-stage goroutine pipeline, stages [0,2) [2,4) [4,6), middle stage INT8:")
	for r, seq := range out {
		fmt.Printf("  request %d: prompt %v → generated %v\n", r, prompts[r], seq[len(prompts[r]):])
	}

	// Verify against single-process decoding.
	single, err := nn.New(cfg, 21)
	if err != nil {
		log.Fatal(err)
	}
	if err := single.ApplyBitAssignment(bits, quant.Deterministic, nil); err != nil {
		log.Fatal(err)
	}
	match := true
	for r, prompt := range prompts {
		seq := append([]int(nil), prompt...)
		cache := single.NewCache()
		logits, err := single.Forward(prompt, cache)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			best := 0
			row := logits.Row(logits.Rows - 1)
			for j, v := range row {
				if v > row[best] {
					best = j
				}
			}
			seq = append(seq, best)
			if len(seq) >= cfg.MaxSeq {
				break
			}
			logits, err = single.Forward([]int{best}, cache)
			if err != nil {
				log.Fatal(err)
			}
		}
		for i := range seq {
			if seq[i] != out[r][i] {
				match = false
			}
		}
	}
	if match {
		fmt.Println("\npipelined output is byte-identical to single-process decoding ✓")
	} else {
		fmt.Println("\nWARNING: pipeline diverged from single-process decoding")
	}
}
