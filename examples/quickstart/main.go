// Quickstart: plan and serve OPT-13b on a single V100 — the paper's
// cluster 1 — in a dozen lines of the core API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	// Ask LLM-PQ for an execution plan: model, devices, offline workload.
	spec, res, err := core.Plan(core.Request{
		ModelName:     "opt-13b",
		DeviceNames:   []string{"V100"},
		DeviceNumbers: []int{1},
		GlobalBatch:   32,
		PromptLen:     512,
		Generate:      100,
		Theta:         1, // balance latency against model quality
	})
	if err != nil {
		log.Fatal(err)
	}
	plan := res.Plan
	fmt.Printf("planned in %v\n", res.Solve)
	fmt.Printf("micro-batches: prefill=%d decode=%d\n", plan.PrefillMB, plan.DecodeMB)
	hist := map[int]int{}
	for _, b := range plan.GroupBits {
		hist[b]++
	}
	fmt.Printf("bit assignment: %v (V100 memory is too small for FP16+KV —\n", hist)
	fmt.Println("the assigner quantizes exactly enough layers to fit)")

	// Execute the plan on the simulated distributed runtime.
	stats, err := core.Serve(spec, plan)
	if err != nil {
		log.Fatal(err)
	}
	ppl, err := core.PredictPPL(spec, plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("served %d tokens in %.2fs → %.2f token/s, predicted PPL %.2f\n",
		stats.TokensOut, stats.LatencySec, stats.Throughput, ppl)
}
