// Offloading crossover: when device memory is scarce, is it better to
// swap FP16/INT8 weights from host RAM (FlexGen-style offloading) or to
// quantize harder and stay resident (LLM-PQ)? This example sweeps cluster
// memory and prints the throughput of each approach — reproducing the
// Table 4/5 pattern where FlexGen-int8 wins only on the most
// memory-starved homogeneous setup (the paper's cluster 9 observation).
//
//	go run ./examples/offloading
package main

import (
	"fmt"
	"log"

	"repro/internal/assigner"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/hardware"
)

func main() {
	fmt.Println("OPT-13b, batch 16, s=512, n=100, single device with shrinking memory")
	fmt.Println()
	fmt.Printf("%-10s %14s %14s %16s\n", "memory", "LLM-PQ tok/s", "FlexGen tok/s", "FlexGen-int8 tok/s")

	for _, memGB := range []float64{30, 24, 20, 17} {
		gpu := hardware.V100
		gpu.MemoryGB = memGB
		cluster := hardware.Cluster{
			Name: "sweep", InterNode: hardware.NVLink,
			Devices: []hardware.Device{{ID: 0, GPU: gpu, Node: 0}},
		}
		spec, err := core.BuildSpec(core.Request{
			ModelName: "opt-13b", ClusterID: 0,
			DeviceNames: []string{"V100"}, DeviceNumbers: []int{1},
			GlobalBatch: 16, PromptLen: 512, Generate: 100, Theta: 0.1,
		})
		if err != nil {
			log.Fatal(err)
		}
		spec.Cluster = cluster // swap in the shrunk device

		pqTok := "OOM"
		if res, err := assigner.Optimize(spec, nil); err == nil {
			if st, err := core.Serve(spec, res.Plan); err == nil {
				pqTok = fmt.Sprintf("%.1f", st.Throughput)
			}
		}
		fg, err := baselines.FlexGen(spec, nil, false)
		if err != nil {
			log.Fatal(err)
		}
		fg8, err := baselines.FlexGen(spec, nil, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %14s %14.1f %16.1f\n",
			fmt.Sprintf("%.0f GB", memGB), pqTok, fg.Throughput, fg8.Throughput)
	}
	fmt.Println()
	fmt.Println("resident quantized weights beat PCIe swapping until memory runs out entirely:")
	fmt.Println("LLM-PQ degrades gracefully (lower bits), FlexGen degrades with swap stalls.")
}
