GO ?= go

# Tier-1 verify: build, stock vet, the domain lint suite, tests.
.PHONY: verify
verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) run ./cmd/llmpq-vet ./...
	$(GO) test ./...

# Race lane: the pipeline engine, online admission, and simulated clock run
# under the race detector (documented in README "Correctness tooling").
.PHONY: verify-race
verify-race:
	$(GO) test -race ./internal/runtime/... ./internal/online/... ./internal/simclock/...

# Fuzz smoke: ~30 s across the two quantizer fuzz lanes (Theorem 1 error
# envelope + group-wise packing invariants).
.PHONY: fuzz-smoke
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzQuantDequantRoundTrip -fuzztime=15s ./internal/quant
	$(GO) test -run='^$$' -fuzz=FuzzGroupwisePack -fuzztime=15s ./internal/quant

# Everything CI runs.
.PHONY: verify-all
verify-all: verify verify-race fuzz-smoke
