GO ?= go

# Tier-1 verify: build, stock vet, the domain lint suite, tests.
.PHONY: verify
verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) run ./cmd/llmpq-vet ./...
	$(GO) test ./...

# Domain lint suite alone, cached and parallel: warm runs re-analyze only
# packages whose file contents or module-local import closure changed.
VET_CACHE := .vetcache
.PHONY: vet
vet:
	$(GO) run ./cmd/llmpq-vet -cache-dir $(VET_CACHE) ./...

# Race lane: the pipeline engine (incl. the instrumented goroutine
# pipeline), online admission, simulated clock, observability registry,
# TP mesh search, the parallel planner search (assigner worker pool
# plus the lp/ilp solvers it calls concurrently), the chaos/failover
# fault-injection stack, the distributed control plane, the coordinator
# journal (concurrent appends), and the HTTP serving front door
# (concurrent handlers sharing one engine) run under the race detector
# (documented in README "Correctness tooling").
.PHONY: verify-race
verify-race:
	$(GO) test -race ./internal/runtime/... ./internal/online/... ./internal/simclock/... ./internal/obs/... ./internal/tp/... ./internal/assigner/... ./internal/lp/... ./internal/ilp/... ./internal/chaos/... ./internal/failover/... ./internal/core/retry/... ./internal/dist/... ./internal/journal/... ./internal/serve/...

# Coverage gate: aggregate statement coverage over ./internal/... must not
# drop below COVER_FLOOR (percent, measured when the gate was introduced;
# raise it when coverage improves, never lower it to make a PR pass).
COVER_FLOOR := 88.1
.PHONY: cover
cover:
	$(GO) test -coverprofile=coverage.out ./internal/...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	awk -v got="$$total" -v floor="$(COVER_FLOOR)" 'BEGIN { \
		if (got + 0 < floor + 0) { printf "cover: %.1f%% is below the %.1f%% floor\n", got, floor; exit 1 } \
		printf "cover: %.1f%% (floor %.1f%%)\n", got, floor }'

# Fuzz smoke: ~60 s across the quantizer fuzz lanes (Theorem 1 error
# envelope + group-wise packing invariants), the HTTP front door's
# request-decode + SSE framing lane, and the coordinator journal's
# replay/decode lane (mutated journals must fail typed, never panic).
.PHONY: fuzz-smoke
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzQuantDequantRoundTrip -fuzztime=15s ./internal/quant
	$(GO) test -run='^$$' -fuzz=FuzzGroupwisePack -fuzztime=15s ./internal/quant
	$(GO) test -run='^$$' -fuzz=FuzzCompletionRequest -fuzztime=15s ./internal/serve
	$(GO) test -run='^$$' -fuzz=FuzzJournalReplay -fuzztime=15s ./internal/dist

# Everything CI runs.
.PHONY: verify-all
verify-all: verify verify-race fuzz-smoke
